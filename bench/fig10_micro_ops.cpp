// Figure 10 / Table I: micro-operation time cost under three
// configurations:
//   android        — no E-Android attached (stock framework),
//   ea_framework   — WindowTracker monitoring only (accounting disabled),
//   ea_complete    — monitoring + collateral accounting.
//
// The paper times each Table I operation 50 times on a Nexus 4 and shows
// that E-Android stays in the same order of magnitude, with measurable
// extra cost only for cross-app ("other") operations. Here the operations
// execute on the simulated framework, so the numbers are host-side
// microseconds, but the *comparison* across configurations is the same
// experiment: the monitoring/accounting hooks are the only difference.
// Each iteration also advances virtual time by one sampling period so the
// accounting module's per-slice work is included for ea_complete.
#include <benchmark/benchmark.h>

#include <functional>
#include <memory>
#include <string>

#include "apps/demo_app.h"
#include "apps/testbed.h"

namespace {

using namespace eandroid;
using apps::DemoApp;
using apps::DemoAppSpec;
using apps::Testbed;
using apps::TestbedOptions;
using framework::BrightnessMode;
using framework::Intent;
using framework::WakelockType;

enum class Config { kAndroid, kEaFramework, kEaComplete };

const char* config_name(Config config) {
  switch (config) {
    case Config::kAndroid: return "android";
    case Config::kEaFramework: return "ea_framework";
    case Config::kEaComplete: return "ea_complete";
  }
  return "?";
}

std::unique_ptr<Testbed> make_bed(Config config) {
  TestbedOptions options;
  options.with_eandroid = config != Config::kAndroid;
  options.eandroid_mode = config == Config::kEaComplete
                              ? core::Mode::kComplete
                              : core::Mode::kFrameworkOnly;
  auto bed = std::make_unique<Testbed>(options);

  DemoAppSpec self = apps::victim_spec();  // has a service of its own
  self.package = "com.bench.self";
  self.wakelock_bug = false;
  self.exit_dialog = false;
  self.permissions = {framework::Permission::kWakeLock,
                      framework::Permission::kWriteSettings};
  bed->install<DemoApp>(self);

  DemoAppSpec other = apps::victim_spec();
  other.package = "com.bench.other";
  other.wakelock_bug = false;
  other.exit_dialog = false;
  bed->install<DemoApp>(other);

  bed->start();
  bed->server().user_launch("com.bench.self");
  bed->server().user_set_screen_mode(BrightnessMode::kManual);
  return bed;
}

/// One Table I micro-operation: `op` runs inside the timed region; the
/// optional `undo` restores state with timing paused.
struct MicroOp {
  const char* name;
  std::function<void(Testbed&)> op;
  std::function<void(Testbed&)> undo;
};

Intent self_service() {
  return Intent::explicit_for("com.bench.self", DemoApp::kService);
}
Intent other_service() {
  return Intent::explicit_for("com.bench.other", DemoApp::kService);
}

std::vector<MicroOp> table1_ops() {
  static framework::BindingId binding;
  static std::optional<framework::WakelockId> lock;
  static int level = 120;
  return {
      {"start_self_service",
       [](Testbed& b) { b.context_of("com.bench.self").start_service(self_service()); },
       [](Testbed& b) { b.context_of("com.bench.self").stop_service(self_service()); }},
      {"stop_self_service",
       [](Testbed& b) { b.context_of("com.bench.self").stop_service(self_service()); },
       [](Testbed& b) { b.context_of("com.bench.self").start_service(self_service()); }},
      {"start_other_service",
       [](Testbed& b) { b.context_of("com.bench.self").start_service(other_service()); },
       [](Testbed& b) { b.context_of("com.bench.self").stop_service(other_service()); }},
      {"stop_other_service",
       [](Testbed& b) { b.context_of("com.bench.self").stop_service(other_service()); },
       [](Testbed& b) { b.context_of("com.bench.self").start_service(other_service()); }},
      {"bind_self_service",
       [](Testbed& b) {
         binding = *b.context_of("com.bench.self").bind_service(self_service());
       },
       [](Testbed& b) { b.context_of("com.bench.self").unbind_service(binding); }},
      {"unbind_self_service",
       [](Testbed& b) { b.context_of("com.bench.self").unbind_service(binding); },
       [](Testbed& b) {
         binding = *b.context_of("com.bench.self").bind_service(self_service());
       }},
      {"bind_other_service",
       [](Testbed& b) {
         binding = *b.context_of("com.bench.self").bind_service(other_service());
       },
       [](Testbed& b) { b.context_of("com.bench.self").unbind_service(binding); }},
      {"unbind_other_service",
       [](Testbed& b) { b.context_of("com.bench.self").unbind_service(binding); },
       [](Testbed& b) {
         binding = *b.context_of("com.bench.self").bind_service(other_service());
       }},
      {"start_self_activity",
       [](Testbed& b) {
         b.context_of("com.bench.self")
             .start_activity(Intent::explicit_for("com.bench.self", "Main"));
       },
       [](Testbed& b) { b.context_of("com.bench.self").finish_activity("Main"); }},
      {"start_other_activity",
       [](Testbed& b) {
         b.context_of("com.bench.self")
             .start_activity(Intent::explicit_for("com.bench.other", "Main"));
       },
       [](Testbed& b) {
         b.context_of("com.bench.other").finish_activity("Main");
         b.server().user_launch("com.bench.self");
       }},
      {"wakelock_acquire",
       [](Testbed& b) {
         lock = b.context_of("com.bench.self")
                    .acquire_wakelock(WakelockType::kScreenBright, "bench");
       },
       [](Testbed& b) { b.context_of("com.bench.self").release_wakelock(*lock); }},
      {"wakelock_release",
       [](Testbed& b) { b.context_of("com.bench.self").release_wakelock(*lock); },
       [](Testbed& b) {
         lock = b.context_of("com.bench.self")
                    .acquire_wakelock(WakelockType::kScreenBright, "bench");
       }},
      {"change_screen",
       [](Testbed& b) {
         level = level == 120 ? 180 : 120;
         b.context_of("com.bench.self").set_brightness(level);
       },
       [](Testbed&) {}},
  };
}

void run_micro_op(benchmark::State& state, const MicroOp& op, Config config) {
  auto bed = make_bed(config);
  // Services/locks some ops expect to already exist.
  const std::string name = op.name;
  const bool needs_started_service = name.rfind("stop_", 0) == 0;
  const bool needs_binding = name.rfind("unbind_", 0) == 0;
  const bool needs_lock = name == "wakelock_release";
  if (needs_started_service || needs_binding || needs_lock) {
    op.undo(*bed);  // undo == the inverse setup for these ops
  }
  for (auto _ : state) {
    op.op(*bed);
    // Advance one sampling period so per-slice accounting runs.
    bed->sim().run_for(sim::millis(250));
    state.PauseTiming();
    op.undo(*bed);
    bed->sim().run_for(sim::millis(250));
    state.ResumeTiming();
  }
}

}  // namespace

int main(int argc, char** argv) {
  for (const MicroOp& op : table1_ops()) {
    for (Config config :
         {Config::kAndroid, Config::kEaFramework, Config::kEaComplete}) {
      const std::string name =
          std::string(op.name) + "/" + config_name(config);
      // The paper runs each operation 50 times and draws boxplots; the
      // repetition aggregates (mean/median/stddev) are the equivalent
      // spread statistics. Each repetition averages many sub-µs ops so
      // host-scheduler noise does not swamp the comparison.
      benchmark::RegisterBenchmark(
          name.c_str(),
          [op, config](benchmark::State& state) {
            run_micro_op(state, op, config);
          })
          ->Unit(benchmark::kMicrosecond)
          ->Iterations(500)
          ->Repetitions(5)
          ->ReportAggregatesOnly(true);
    }
  }
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
