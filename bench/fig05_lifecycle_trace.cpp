// Figure 5: attack-lifecycle state machines.
//
// Exercises each of the five machines with a canonical event sequence and
// prints the resulting window open/close trace, so the Fig 5 transitions
// can be read off directly.
#include <cstdio>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace {

using namespace eandroid;
using apps::DemoApp;
using apps::Testbed;

void dump_trace(Testbed& bed, const char* title) {
  std::printf("--- %s ---\n", title);
  for (const auto& t : bed.eandroid()->tracker().trace()) {
    std::printf("  [%s] %-5s %-9s driver=uid%d driven=uid%d  (%s)\n",
                sim::format_time(t.when).c_str(), t.opened ? "open" : "close",
                core::to_string(t.kind), t.driver.value, t.driven.value,
                t.reason.c_str());
  }
  bed.eandroid()->tracker().clear_trace();
  std::printf("\n");
}

}  // namespace

int main() {
  using framework::BrightnessMode;
  using framework::Intent;
  using framework::WakelockType;

  std::printf("=== Figure 5: attack lifecycle traces ===\n\n");

  {  // (a) Activity: start by another app; ends when started again.
    Testbed bed;
    bed.install<DemoApp>(apps::message_spec());
    bed.install<DemoApp>(apps::camera_spec());
    bed.start();
    bed.server().user_launch("com.example.message");
    bed.sim().run_for(sim::seconds(1));
    bed.context_of("com.example.message")
        .start_activity(Intent::explicit_for("com.example.camera", "Main"));
    bed.sim().run_for(sim::seconds(5));
    bed.server().user_launch("com.example.camera");  // end event
    dump_trace(bed, "(a) activity: cross-app start ... user restart");
  }

  {  // (b) Interrupting activity: ends when the victim returns to front.
    Testbed bed;
    bed.install<DemoApp>(apps::message_spec());
    apps::DemoAppSpec mal = apps::message_spec();
    mal.package = "com.evil.popup";
    bed.install<DemoApp>(mal);
    bed.start();
    bed.server().user_launch("com.example.message");
    bed.sim().run_for(sim::seconds(1));
    bed.context_of("com.evil.popup").start_home();  // forces message away
    bed.sim().run_for(sim::seconds(5));
    bed.server().user_switch_to("com.example.message");  // back to front
    dump_trace(bed, "(b) interrupt: forced to background ... resumed");
  }

  {  // (c) Service: bind survives stopService; ends at unbind.
    Testbed bed;
    apps::DemoAppSpec victim = apps::victim_spec();
    victim.wakelock_bug = false;
    victim.exit_dialog = false;
    bed.install<DemoApp>(victim);
    apps::DemoAppSpec client = apps::message_spec();
    client.package = "com.evil.client";
    bed.install<DemoApp>(client);
    bed.start();
    auto binding = bed.context_of("com.evil.client")
                       .bind_service(Intent::explicit_for(
                           victim.package, DemoApp::kService));
    bed.context_of("com.evil.client")
        .start_service(Intent::explicit_for(victim.package,
                                            DemoApp::kService));
    bed.sim().run_for(sim::seconds(2));
    bed.context_of("com.evil.client")
        .stop_service(Intent::explicit_for(victim.package,
                                           DemoApp::kService));
    bed.sim().run_for(sim::seconds(2));
    bed.context_of("com.evil.client").unbind_service(*binding);
    dump_trace(bed, "(c) service: bind+start ... stop (window survives) "
                    "... unbind");
  }

  {  // (d) Screen: brightness escalation; ends when the user intervenes.
    Testbed bed;
    apps::DemoAppSpec mal = apps::message_spec();
    mal.package = "com.evil.bright";
    mal.permissions = {framework::Permission::kWriteSettings};
    bed.install<DemoApp>(mal);
    bed.start();
    bed.server().user_set_screen_mode(BrightnessMode::kManual);
    bed.server().user_set_brightness(100);
    bed.context_of("com.evil.bright").set_brightness(240);
    bed.sim().run_for(sim::seconds(5));
    bed.server().user_set_brightness(100);  // user takes control back
    dump_trace(bed, "(d) screen: background increase ... user reset");
  }

  {  // (e) Wakelock: acquired in background; ends at release.
    Testbed bed;
    apps::DemoAppSpec mal = apps::message_spec();
    mal.package = "com.evil.lock";
    mal.permissions = {framework::Permission::kWakeLock};
    bed.install<DemoApp>(mal);
    bed.start();
    auto lock = bed.context_of("com.evil.lock")
                    .acquire_wakelock(WakelockType::kScreenBright, "trace");
    bed.sim().run_for(sim::seconds(5));
    bed.context_of("com.evil.lock").release_wakelock(*lock);
    dump_trace(bed, "(e) wakelock: background acquire ... release");
  }

  return 0;
}
