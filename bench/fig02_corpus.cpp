// Figure 2: "Collected apps from Google Play."
//
// The paper reverse-engineers 1,124 apps across 28 categories and reports:
// 72% contain exported components, 81% request WAKE_LOCK, 21% request
// WRITE_SETTINGS. We regenerate the statistic from the synthetic corpus
// (calibrated marginals, per-category structure) via the same manifest
// analysis pass.
#include <cstdio>

#include "analysis/attack_surface.h"
#include "analysis/corpus.h"

int main() {
  using namespace eandroid::analysis;
  const auto corpus = generate_corpus();
  const CorpusStats stats = analyze_corpus(corpus);
  std::printf("=== Figure 2: manifest study over the Play corpus ===\n\n");
  std::printf("%s\n", render_stats(stats, /*per_category=*/true).c_str());
  // Threat-model follow-up: what the marginals mean for an attacker.
  const AttackSurface surface = measure_attack_surface(corpus);
  std::printf("\n%s", render_attack_surface(surface, 30).c_str());
  return 0;
}
