// Figure 2: "Collected apps from Google Play."
//
// The paper reverse-engineers 1,124 apps across 28 categories and reports:
// 72% contain exported components, 81% request WAKE_LOCK, 21% request
// WRITE_SETTINGS. We regenerate the statistic from the synthetic corpus
// (calibrated marginals, per-category structure) via the same manifest
// analysis pass.
//
// Corpus generation stays serial (one seeded RNG stream), but the manifest
// pass is a pure fold, so the corpus splits into disjoint slices analyzed
// in parallel via exp::run_indexed and merged with merge_stats /
// merge_surfaces — integer sums, identical to the single-pass result.
#include <cstdio>
#include <span>
#include <thread>
#include <vector>

#include "analysis/attack_surface.h"
#include "analysis/corpus.h"
#include "exp/parallel_runner.h"

int main() {
  using namespace eandroid::analysis;
  namespace exp = eandroid::exp;
  const auto corpus = generate_corpus();

  const unsigned threads =
      std::max(1u, std::thread::hardware_concurrency());
  const std::size_t slices = std::min<std::size_t>(threads, corpus.size());
  const auto slice_of = [&](std::size_t i) {
    const std::size_t per = corpus.size() / slices;
    const std::size_t begin = i * per;
    const std::size_t end = i + 1 == slices ? corpus.size() : begin + per;
    return std::span<const eandroid::framework::Manifest>(
        corpus.data() + begin, end - begin);
  };

  const CorpusStats stats = merge_stats(exp::run_indexed<CorpusStats>(
      slices, [&](std::size_t i) { return analyze_corpus(slice_of(i)); }));
  std::printf("=== Figure 2: manifest study over the Play corpus ===\n\n");
  std::printf("%s\n", render_stats(stats, /*per_category=*/true).c_str());

  // Threat-model follow-up: what the marginals mean for an attacker.
  const AttackSurface surface = merge_surfaces(exp::run_indexed<AttackSurface>(
      slices,
      [&](std::size_t i) { return measure_attack_surface(slice_of(i)); }));
  std::printf("\n%s", render_attack_surface(surface, 30).c_str());
  return 0;
}
