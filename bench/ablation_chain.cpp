// Ablation benches for the design choices DESIGN.md calls out:
//
//  (1) chain propagation — rerun the hybrid chain (scene #2) with the
//      closure restricted to direct neighbours: the Contacts app loses
//      the Camera's share, showing why Algorithm 1 walks the chain;
//  (2) screen policies — the same leaked-wakelock attack (#6) under the
//      three policies the paper discusses: Android's separate Screen row,
//      PowerTutor's charge-the-foreground, and E-Android's
//      charge-the-initiator.
#include <cstdio>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace {

using namespace eandroid;
using apps::DemoApp;
using apps::Testbed;
using apps::TestbedOptions;
using framework::Intent;

struct ChainResult {
  double contacts_collateral = 0.0;
  double from_camera = 0.0;
};

ChainResult run_chain(bool chain_propagation) {
  TestbedOptions options;
  options.engine_config.chain_propagation = chain_propagation;
  Testbed bed(options);
  bed.install<DemoApp>(apps::contacts_spec());
  bed.install<DemoApp>(apps::message_spec());
  bed.install<DemoApp>(apps::camera_spec());
  bed.start();

  bed.server().user_launch("com.example.contacts");
  bed.sim().run_for(sim::seconds(5));
  bed.server().user_tap(1, 1);
  bed.context_of("com.example.contacts")
      .start_activity(Intent::explicit_for("com.example.message", "Main"));
  bed.sim().run_for(sim::seconds(10));
  bed.server().user_tap(1, 1);
  bed.context_of("com.example.message")
      .start_activity(Intent::implicit("android.media.action.VIDEO_CAPTURE"));
  bed.sim().run_for(sim::seconds(20));
  bed.server().user_tap(1, 1);
  bed.run_for(sim::seconds(11));

  ChainResult result;
  auto* ea = bed.eandroid();
  const kernelsim::Uid contacts = bed.uid_of("com.example.contacts");
  result.contacts_collateral = ea->engine().collateral_mj(contacts);
  result.from_camera = ea->engine().collateral_from(
      contacts, core::Entity::app(bed.uid_of("com.example.camera")));
  return result;
}

}  // namespace

int main() {
  std::printf("=== Ablation 1: chain propagation in Algorithm 1 ===\n\n");
  const ChainResult with_chain = run_chain(true);
  const ChainResult without_chain = run_chain(false);
  std::printf("%-34s %14s %14s\n", "", "chains ON", "chains OFF");
  std::printf("%-34s %12.1f %14.1f\n", "Contacts collateral (mJ)",
              with_chain.contacts_collateral,
              without_chain.contacts_collateral);
  std::printf("%-34s %12.1f %14.1f\n", "  of which from Camera (mJ)",
              with_chain.from_camera, without_chain.from_camera);
  std::printf("\nwith the chain disabled, the Camera's drain vanishes from "
              "the Contacts account — the Fig 7 scenario becomes invisible "
              "again.\n\n");

  std::printf("=== Ablation 2: screen energy policy (leaked wakelock) "
              "===\n\n");
  Testbed bed;
  apps::WakelockMalware* malware = bed.install<apps::WakelockMalware>();
  bed.start();
  (void)bed.context_of(apps::WakelockMalware::kPackage);
  malware->attack();
  bed.run_for(sim::seconds(60));

  const auto android = bed.battery_stats().view();
  const auto tutor = bed.power_tutor().view();
  const auto ea = bed.eandroid()->view();
  std::printf("%-44s %10s\n", "policy / row", "mJ");
  std::printf("%-44s %10.1f\n", "Android: 'Screen' independent row",
              android.energy_of("Screen"));
  std::printf("%-44s %10.1f\n",
              "PowerTutor: charged to foreground (launcher)",
              tutor.energy_of(framework::kLauncherPackage));
  const core::EARow* row = ea.row_of(apps::WakelockMalware::kPackage);
  std::printf("%-44s %10.1f\n", "E-Android: charged to the initiator",
              row == nullptr ? 0.0 : row->collateral_mj);
  std::printf("\nonly the initiator policy points at the malware.\n");
  return 0;
}
