// Figure 1: "Energy view when filming in the Message app."
//
// Reproduces the motivating observation: the stock battery interface
// shows the Camera as the heavy consumer and the Message app as nearly
// free, although the Message drove the whole interaction. The paper's
// figure shows BatteryStats percentages; we print the same rows plus the
// E-Android counterpoint for context.
#include <cstdio>

#include "apps/scenarios.h"

int main() {
  using namespace eandroid;
  const apps::ScenarioResult r = apps::run_scene1();

  std::printf("=== Figure 1: energy view when filming in the Message app ===\n");
  std::printf("(paper: Camera dominates; Message 'consumes a quite small "
              "portion of energy')\n\n");
  std::printf("%-28s %10s\n", "app (Android BatteryStats)", "share");
  std::printf("%-28s %9.1f%%\n", "com.example.camera",
              r.android_view.percent_of("com.example.camera"));
  std::printf("%-28s %9.1f%%\n", "com.example.message",
              r.android_view.percent_of("com.example.message"));
  std::printf("%-28s %9.1f%%\n", "Screen",
              r.android_view.percent_of("Screen"));
  std::printf("\nratio camera:message = %.1f : 1 (paper shows ~10:1 scale "
              "difference)\n",
              r.android_view.energy_of("com.example.camera") /
                  r.android_view.energy_of("com.example.message"));
  std::printf("\nFor contrast, E-Android charges the Camera's %.0f mJ back "
              "to the Message:\n  Message total %.1f%% of battery drain\n",
              r.android_view.energy_of("com.example.camera"),
              r.ea_view.percent_of("com.example.message"));
  return 0;
}
