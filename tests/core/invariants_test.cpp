// InvariantChecker: a healthy device passes every check; fabricated
// inconsistencies are reported with enough context to debug from.
#include <gtest/gtest.h>

#include <string>

#include "apps/demo_app.h"
#include "apps/testbed.h"
#include "core/invariants.h"

namespace eandroid::core {
namespace {

apps::Testbed& attach_all(apps::Testbed& bed, InvariantChecker& checker) {
  checker.attach(bed.eandroid());
  checker.attach(&bed.battery_stats());
  checker.attach(&bed.power_tutor());
  return bed;
}

TEST(InvariantsTest, CleanTestbedPasses) {
  apps::Testbed bed;
  bed.install<apps::DemoApp>(apps::message_spec());
  bed.install<apps::DemoApp>(apps::camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(5));
  bed.server().user_launch("com.example.camera");
  bed.run_for(sim::seconds(5));
  bed.server().kill_app(bed.uid_of("com.example.message"));
  bed.run_for(sim::seconds(2));

  InvariantChecker checker(bed.server());
  attach_all(bed, checker);
  const InvariantReport report = checker.check();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_EQ(report.to_string(), "all invariants hold");
}

TEST(InvariantsTest, DetectsUnmeteredBatteryDrain) {
  apps::Testbed bed;
  bed.install<apps::DemoApp>(apps::message_spec());
  bed.start();
  bed.run_for(sim::seconds(2));

  // Energy leaves the battery behind the sampler's back: every profiler's
  // total now disagrees with the consumption ledger.
  bed.server().battery().drain(500.0, bed.sim().now());

  InvariantChecker checker(bed.server());
  attach_all(bed, checker);
  const InvariantReport report = checker.check();
  ASSERT_FALSE(report.ok());
  EXPECT_GE(report.violations.size(), 3u);  // all three profilers disagree
  EXPECT_NE(report.to_string().find("!= battery consumed"),
            std::string::npos);
}

TEST(InvariantsTest, BatteryDepletionFaultKeepsConservation) {
  apps::Testbed bed;
  bed.install<apps::DemoApp>(apps::message_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(5));

  // The chaos exhaust fault: the cell collapses, but no energy was
  // consumed, so the conservation invariant must keep holding.
  bed.server().battery().deplete_to(0.0, bed.sim().now());
  bed.run_for(sim::seconds(2));

  InvariantChecker checker(bed.server());
  attach_all(bed, checker);
  const InvariantReport report = checker.check();
  EXPECT_TRUE(report.ok()) << report.to_string();
  EXPECT_NEAR(bed.server().battery().remaining_mj(), 0.0, 1e-9);
}

TEST(InvariantsTest, TighterToleranceIsConfigurable) {
  apps::Testbed bed;
  bed.install<apps::DemoApp>(apps::message_spec());
  bed.start();
  bed.run_for(sim::seconds(1));
  bed.server().battery().drain(0.5, bed.sim().now());  // half a millijoule

  // Unmetered, but inside a configured 1 mJ tolerance...
  InvariantChecker lax(bed.server(),
                       InvariantChecker::Config{.energy_tolerance_mj = 1.0});
  attach_all(bed, lax);
  EXPECT_TRUE(lax.check().ok());

  // ...yet well outside the default 1e-3 mJ one.
  InvariantChecker strict(bed.server());
  attach_all(bed, strict);
  EXPECT_FALSE(strict.check().ok());
}

}  // namespace
}  // namespace eandroid::core
