#include "core/detector.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace eandroid::core {
namespace {

using apps::DemoApp;
using apps::Testbed;
using framework::Intent;

bool has_alert(const std::vector<Alert>& alerts, AlertKind kind,
               const std::string& package) {
  for (const auto& alert : alerts) {
    if (alert.kind == kind && alert.package == package) return true;
  }
  return false;
}

TEST(DetectorTest, QuietDeviceHasNoAlerts) {
  Testbed bed;
  bed.install<DemoApp>(apps::message_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(30));
  CollateralAttackDetector detector(bed.server(), *bed.eandroid());
  EXPECT_TRUE(detector.scan().empty());
  EXPECT_NE(detector.render({}).find("no collateral-energy alerts"),
            std::string::npos);
}

TEST(DetectorTest, FlagsBindServiceAttacker) {
  Testbed bed;
  apps::DemoAppSpec victim = apps::victim_spec();
  victim.wakelock_bug = false;
  victim.exit_dialog = false;
  bed.install<DemoApp>(victim);
  bed.install<apps::BinderMalware>(victim.package, DemoApp::kService);
  bed.start();
  (void)bed.context_of(apps::BinderMalware::kPackage);
  bed.server().user_launch(victim.package);
  bed.context_of(victim.package)
      .start_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.sim().run_for(sim::seconds(1));
  bed.context_of(victim.package)
      .stop_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.server().user_press_home();
  for (int i = 0; i < 3; ++i) {
    bed.sim().run_for(sim::seconds(20));
    bed.server().user_tap(1, 1);
  }
  bed.run_for(sim::Duration(0));

  CollateralAttackDetector detector(bed.server(), *bed.eandroid());
  const auto alerts = detector.scan();
  EXPECT_TRUE(has_alert(alerts, AlertKind::kCollateralAttacker,
                        apps::BinderMalware::kPackage));
  // The victim is no attacker: its own energy dominates.
  EXPECT_FALSE(has_alert(alerts, AlertKind::kCollateralAttacker,
                         victim.package));
}

TEST(DetectorTest, FlagsWakelockMalwareAsScreenAbuserAndNoSleep) {
  Testbed bed;
  auto* malware = bed.install<apps::WakelockMalware>();
  bed.start();
  (void)bed.context_of(apps::WakelockMalware::kPackage);
  malware->attack();
  bed.run_for(sim::minutes(2));

  CollateralAttackDetector detector(bed.server(), *bed.eandroid());
  const auto alerts = detector.scan();
  EXPECT_TRUE(has_alert(alerts, AlertKind::kScreenAbuser,
                        apps::WakelockMalware::kPackage));
  EXPECT_TRUE(has_alert(alerts, AlertKind::kNoSleepBug,
                        apps::WakelockMalware::kPackage));
  const std::string text = detector.render(alerts);
  EXPECT_NE(text.find("screen-abuser"), std::string::npos);
  EXPECT_NE(text.find(apps::WakelockMalware::kPackage), std::string::npos);
}

TEST(DetectorTest, BenignDriverIsReportedByDesign) {
  // The Message drives the Camera: rule 1 fires; the paper says such
  // collateral can be welcome — the tool reports, the user decides.
  Testbed bed;
  bed.install<DemoApp>(apps::message_spec());
  bed.install<DemoApp>(apps::camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::implicit("android.media.action.VIDEO_CAPTURE"));
  bed.run_for(sim::seconds(30));
  CollateralAttackDetector detector(bed.server(), *bed.eandroid());
  EXPECT_TRUE(has_alert(detector.scan(), AlertKind::kCollateralAttacker,
                        "com.example.message"));
}

TEST(DetectorTest, ThresholdsAreRespected) {
  Testbed bed;
  bed.install<DemoApp>(apps::message_spec());
  bed.install<DemoApp>(apps::camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::implicit("android.media.action.VIDEO_CAPTURE"));
  bed.run_for(sim::seconds(30));
  DetectorConfig strict;
  strict.attacker_floor_mj = 1e9;  // impossible floor
  CollateralAttackDetector detector(bed.server(), *bed.eandroid(), strict);
  EXPECT_FALSE(has_alert(detector.scan(), AlertKind::kCollateralAttacker,
                         "com.example.message"));
}

}  // namespace
}  // namespace eandroid::core
