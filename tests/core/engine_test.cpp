// EAndroidEngine tests: Algorithm 1, including multi-collateral and hybrid
// chain scenarios (paper Fig 6 / Fig 7).
#include "core/engine.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/window_tracker.h"
#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::core {
namespace {

using framework::BrightnessMode;
using framework::Intent;
using framework::Manifest;
using framework::Permission;
using framework::ServiceDecl;
using framework::WakelockType;
using framework::testing::RecordingApp;
using framework::testing::simple_manifest;

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : server_(sim_) {
    install("com.a");
    install("com.b");
    install("com.c");
    Manifest svc = simple_manifest("com.svc");
    svc.services.push_back(ServiceDecl{"Work", /*exported=*/true, {}});
    server_.install(std::move(svc), std::make_unique<RecordingApp>());
    Manifest power = simple_manifest("com.power");
    power.permissions = {Permission::kWakeLock, Permission::kWriteSettings};
    server_.install(std::move(power), std::make_unique<RecordingApp>());
    server_.boot();
    tracker_ = std::make_unique<WindowTracker>(server_);
    engine_ = std::make_unique<EAndroidEngine>(server_, *tracker_);
  }

  void install(const std::string& package) {
    server_.install(simple_manifest(package),
                    std::make_unique<RecordingApp>());
  }
  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }
  framework::Context& ctx(const std::string& package) {
    server_.ensure_process(uid(package));
    return server_.context_of(uid(package));
  }

  /// Minimal synthetic slice: per-app cpu energy in mJ.
  energy::EnergySlice slice_with(
      std::initializer_list<std::pair<std::string, double>> cpu,
      double screen_mj = 0.0) {
    // Shares the server's id table, as the engine requires.
    energy::EnergySlice slice(server_.ids());
    slice.begin = sim_.now();
    slice.end = sim_.now() + sim::millis(250);
    for (const auto& [package, mj] : cpu) {
      slice.part(uid(package), energy::HwPart::kCpu) = mj;
    }
    slice.screen_mj = screen_mj;
    slice.screen_on = screen_mj > 0.0;
    slice.brightness = server_.screen().brightness();
    slice.foreground = server_.activities().foreground_uid();
    slice.screen_forced_by_wakelock =
        server_.power().screen_forced_by_wakelock();
    slice.system_mj = 5.0;
    slice.seal();
    return slice;
  }

  sim::Simulator sim_;
  framework::SystemServer server_;
  std::unique_ptr<WindowTracker> tracker_;
  std::unique_ptr<EAndroidEngine> engine_;
};

TEST_F(EngineTest, NoWindowsMeansNoCollateral) {
  engine_->on_slice(slice_with({{"com.a", 100.0}}, 50.0));
  EXPECT_DOUBLE_EQ(engine_->direct_mj(uid("com.a")), 100.0);
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.a")), 0.0);
  EXPECT_DOUBLE_EQ(engine_->screen_row_mj(), 50.0);
  EXPECT_DOUBLE_EQ(engine_->system_row_mj(), 5.0);
}

TEST_F(EngineTest, OpenWindowChargesDrivenEnergyToDriver) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  engine_->on_slice(slice_with({{"com.a", 10.0}, {"com.b", 100.0}}));
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.a")), 100.0);
  EXPECT_DOUBLE_EQ(
      engine_->collateral_from(uid("com.a"), Entity::app(uid("com.b"))),
      100.0);
  // The driven app's own ("original") account is untouched.
  EXPECT_DOUBLE_EQ(engine_->direct_mj(uid("com.b")), 100.0);
}

TEST_F(EngineTest, ClosedWindowStopsCharging) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  engine_->on_slice(slice_with({{"com.b", 100.0}}));
  server_.user_launch("com.b");  // closes the window
  engine_->on_slice(slice_with({{"com.b", 70.0}}));
  // Already-charged energy persists, nothing new accrues.
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.a")), 100.0);
}

TEST_F(EngineTest, ChainChargesTransitively) {
  // Fig 7: A binds B's-analog, B starts C.
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ctx("com.b").start_activity(Intent::explicit_for("com.c", "Main"));
  engine_->on_slice(slice_with({{"com.b", 40.0}, {"com.c", 60.0}}));
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.a")), 100.0);
  EXPECT_DOUBLE_EQ(
      engine_->collateral_from(uid("com.a"), Entity::app(uid("com.c"))), 60.0);
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.b")), 60.0);
}

TEST_F(EngineTest, BrokenChainLinkStopsDownstreamCharging) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ctx("com.b").start_activity(Intent::explicit_for("com.c", "Main"));
  server_.user_launch("com.b");  // ends A->B
  engine_->on_slice(slice_with({{"com.c", 50.0}}));
  // B->C is still open; A->B is not, so A no longer reaches C.
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.a")), 0.0);
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.b")), 50.0);
}

TEST_F(EngineTest, MultiCollateralDoesNotDoubleCharge) {
  // Fig 6: A both binds B's service and starts B's activity.
  server_.user_launch("com.a");
  ctx("com.a").bind_service(Intent::explicit_for("com.svc", "Work"));
  ctx("com.a").start_activity(Intent::explicit_for("com.svc", "Main"));
  engine_->on_slice(slice_with({{"com.svc", 100.0}}));
  // Two windows, one driven app: charged once.
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.a")), 100.0);
}

TEST_F(EngineTest, CycleBetweenAppsDoesNotLoopForever) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ctx("com.b").start_activity(Intent::explicit_for("com.a", "Main"));
  engine_->on_slice(slice_with({{"com.a", 10.0}, {"com.b", 20.0}}));
  // Each charges the other, neither charges itself.
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.a")), 20.0);
  EXPECT_DOUBLE_EQ(engine_->collateral_mj(uid("com.b")), 10.0);
}

TEST_F(EngineTest, WakelockForcedScreenChargedToHolder) {
  ctx("com.power").acquire_wakelock(WakelockType::kScreenBright, "t");
  sim_.run_for(sim::minutes(1));  // past the user-activity timeout
  ASSERT_TRUE(server_.power().screen_forced_by_wakelock());
  engine_->on_slice(slice_with({}, 200.0));
  EXPECT_DOUBLE_EQ(
      engine_->collateral_from(uid("com.power"), Entity::screen()), 200.0);
  // The claimed energy leaves the neutral row but stays on the books:
  // screen_row + attributed_screen is still all screen energy.
  EXPECT_DOUBLE_EQ(engine_->screen_row_mj(), 0.0);
  EXPECT_DOUBLE_EQ(engine_->attributed_screen_mj(), 200.0);
}

TEST_F(EngineTest, NormalScreenStaysOnNeutralRow) {
  engine_->on_slice(slice_with({}, 200.0));
  EXPECT_DOUBLE_EQ(engine_->screen_row_mj(), 200.0);
  EXPECT_DOUBLE_EQ(engine_->attributed_screen_mj(), 0.0);
}

TEST_F(EngineTest, BrightnessDeltaChargedToAttacker) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  server_.user_set_brightness(100);
  ctx("com.power").set_brightness(200);
  // Screen power at 200: base + 200*c; baseline at 100: base + 100*c.
  const auto& p = server_.params();
  const double current_mw = p.screen_base_mw + 200 * p.screen_per_level_mw;
  const double delta_mw = 100 * p.screen_per_level_mw;
  engine_->on_slice(slice_with({}, 300.0));
  const double expected = 300.0 * delta_mw / current_mw;
  EXPECT_NEAR(engine_->collateral_from(uid("com.power"), Entity::screen()),
              expected, 1e-9);
  EXPECT_NEAR(engine_->screen_row_mj(), 300.0 - expected, 1e-9);
  EXPECT_NEAR(engine_->attributed_screen_mj(), expected, 1e-9);
}

TEST_F(EngineTest, ScreenCollateralFlowsUpChains) {
  // A starts B; B (has permissions? use com.power as the driven app):
  // A starts com.power's activity; com.power escalates brightness.
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.power", "Main"));
  server_.user_set_screen_mode(BrightnessMode::kManual);
  // NOTE: the user brightness change above closes screen windows but not
  // the activity window A->power.
  ctx("com.power").set_brightness(255);
  engine_->on_slice(slice_with({{"com.power", 10.0}}, 100.0));
  const double power_screen =
      engine_->collateral_from(uid("com.power"), Entity::screen());
  EXPECT_GT(power_screen, 0.0);
  EXPECT_DOUBLE_EQ(
      engine_->collateral_from(uid("com.a"), Entity::screen()), power_screen);
  EXPECT_DOUBLE_EQ(
      engine_->collateral_from(uid("com.a"), Entity::app(uid("com.power"))),
      10.0);
}

TEST_F(EngineTest, AccountingDisabledDropsEverything) {
  EAndroidEngine disabled(server_, *tracker_,
                          EngineConfig{.accounting_enabled = false});
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  disabled.on_slice(slice_with({{"com.b", 100.0}}));
  EXPECT_DOUBLE_EQ(disabled.true_total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(disabled.collateral_mj(uid("com.a")), 0.0);
}

TEST_F(EngineTest, ChainAblationChargesOnlyDirectNeighbours) {
  EAndroidEngine flat(server_, *tracker_,
                      EngineConfig{.chain_propagation = false});
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ctx("com.b").start_activity(Intent::explicit_for("com.c", "Main"));
  flat.on_slice(slice_with({{"com.b", 40.0}, {"com.c", 60.0}}));
  EXPECT_DOUBLE_EQ(flat.collateral_mj(uid("com.a")), 40.0);  // B only
  EXPECT_DOUBLE_EQ(flat.collateral_mj(uid("com.b")), 60.0);
}

TEST_F(EngineTest, TrueTotalAccumulates) {
  engine_->on_slice(slice_with({{"com.a", 100.0}}, 50.0));
  engine_->on_slice(slice_with({{"com.a", 100.0}}, 50.0));
  EXPECT_DOUBLE_EQ(engine_->true_total_mj(), 2 * (100.0 + 50.0 + 5.0));
}

TEST_F(EngineTest, ResetClearsState) {
  engine_->on_slice(slice_with({{"com.a", 100.0}}, 50.0));
  engine_->reset();
  EXPECT_DOUBLE_EQ(engine_->true_total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(engine_->direct_mj(uid("com.a")), 0.0);
  EXPECT_TRUE(engine_->known_uids().empty());
}

TEST_F(EngineTest, KnownUidsCoversDirectAndCollateral) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  engine_->on_slice(slice_with({{"com.b", 100.0}}));
  const auto uids = engine_->known_uids();
  bool has_a = false, has_b = false;
  for (kernelsim::Uid u : uids) {
    if (u == uid("com.a")) has_a = true;
    if (u == uid("com.b")) has_b = true;
  }
  EXPECT_TRUE(has_a);  // appears via its collateral map
  EXPECT_TRUE(has_b);  // appears via direct energy
}

}  // namespace
}  // namespace eandroid::core
