// E-Android revised battery interface tests (paper §IV-C / Fig 8).
#include "core/battery_interface.h"

#include <gtest/gtest.h>

#include <memory>

#include "core/e_android.h"
#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::core {
namespace {

using framework::Intent;
using framework::testing::RecordingApp;
using framework::testing::simple_manifest;

class InterfaceTest : public ::testing::Test {
 protected:
  InterfaceTest() : server_(sim_) {
    server_.install(simple_manifest("com.a"),
                    std::make_unique<RecordingApp>());
    server_.install(simple_manifest("com.b"),
                    std::make_unique<RecordingApp>());
    server_.boot();
    ea_ = std::make_unique<EAndroid>(server_);
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }
  framework::Context& ctx(const std::string& package) {
    server_.ensure_process(uid(package));
    return server_.context_of(uid(package));
  }

  energy::EnergySlice slice(double a_mj, double b_mj, double screen = 0.0) {
    energy::EnergySlice s(server_.ids());
    s.begin = sim_.now();
    s.end = sim_.now() + sim::millis(250);
    if (a_mj > 0) s.part(uid("com.a"), energy::HwPart::kCpu) = a_mj;
    if (b_mj > 0) s.part(uid("com.b"), energy::HwPart::kCpu) = b_mj;
    s.screen_mj = screen;
    s.screen_on = screen > 0;
    s.brightness = server_.screen().brightness();
    s.system_mj = 10.0;
    s.seal();
    return s;
  }

  sim::Simulator sim_;
  framework::SystemServer server_;
  std::unique_ptr<EAndroid> ea_;
};

TEST_F(InterfaceTest, RanksByTotalIncludingCollateral) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ea_->on_slice(slice(10.0, 100.0));
  const EAView view = ea_->view();
  ASSERT_GE(view.rows.size(), 2u);
  // A's total (10 own + 100 collateral) beats B's 100.
  EXPECT_EQ(view.rows[0].label, "com.a");
  EXPECT_DOUBLE_EQ(view.rows[0].total_mj, 110.0);
  EXPECT_DOUBLE_EQ(view.rows[0].original_mj, 10.0);
  EXPECT_DOUBLE_EQ(view.rows[0].collateral_mj, 100.0);
}

TEST_F(InterfaceTest, InventoryListsContributors) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ea_->on_slice(slice(10.0, 100.0));
  const EAView view = ea_->view();
  const EARow* row = view.row_of("com.a");
  ASSERT_NE(row, nullptr);
  ASSERT_EQ(row->inventory.size(), 1u);
  EXPECT_EQ(row->inventory[0].label, "com.b");
  EXPECT_DOUBLE_EQ(row->inventory[0].energy_mj, 100.0);
}

TEST_F(InterfaceTest, PercentAgainstTrueBatteryDrain) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ea_->on_slice(slice(10.0, 100.0, 80.0));
  const EAView view = ea_->view();
  const double total = 10.0 + 100.0 + 80.0 + 10.0;
  EXPECT_NEAR(view.true_total_mj, total, 1e-9);
  EXPECT_NEAR(view.percent_of("com.a"), 100.0 * 110.0 / total, 1e-9);
}

TEST_F(InterfaceTest, NoCollateralMeansEmptyInventory) {
  ea_->on_slice(slice(10.0, 20.0));
  const EAView view = ea_->view();
  const EARow* row = view.row_of("com.b");
  ASSERT_NE(row, nullptr);
  EXPECT_TRUE(row->inventory.empty());
  EXPECT_DOUBLE_EQ(row->collateral_mj, 0.0);
}

TEST_F(InterfaceTest, RenderContainsInventoryLines) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ea_->on_slice(slice(10.0, 100.0));
  const std::string text = ea_->view().render("sample");
  EXPECT_NE(text.find("com.a"), std::string::npos);
  EXPECT_NE(text.find("+ from com.b"), std::string::npos);
  EXPECT_NE(text.find("battery drain"), std::string::npos);
}

TEST_F(InterfaceTest, MissingRowQueriesReturnZero) {
  const EAView view = ea_->view();
  EXPECT_EQ(view.row_of("com.none"), nullptr);
  EXPECT_DOUBLE_EQ(view.total_of("com.none"), 0.0);
  EXPECT_DOUBLE_EQ(view.percent_of("com.none"), 0.0);
}

TEST_F(InterfaceTest, RevisedPowerTutorBreakdownSplitsComponents) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  energy::EnergySlice s = slice(10.0, 100.0);
  s.part(uid("com.a"), energy::HwPart::kCamera) = 33.0;
  s.add_routine_at(s.ids().app_of(uid("com.a")),
                   s.ids().routine_of("main"), 10.0);
  s.seal();
  ea_->on_slice(s);
  const auto* direct = ea_->engine().direct_breakdown(uid("com.a"));
  ASSERT_NE(direct, nullptr);
  EXPECT_DOUBLE_EQ(direct->cpu_mj, 10.0);
  EXPECT_DOUBLE_EQ(direct->camera_mj, 33.0);
  EXPECT_DOUBLE_EQ(ea_->engine().direct_routine_mj(uid("com.a"), "main"),
                   10.0);

  const std::string text =
      ea_->battery_interface().render_app_breakdown(uid("com.a"));
  EXPECT_NE(text.find("revised PowerTutor"), std::string::npos);
  EXPECT_NE(text.find("CPU"), std::string::npos);
  EXPECT_NE(text.find("Camera"), std::string::npos);
  EXPECT_NE(text.find("collateral from com.b"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST_F(InterfaceTest, BreakdownForUnknownAppIsMinimal) {
  const std::string text =
      ea_->battery_interface().render_app_breakdown(kernelsim::Uid{4242});
  EXPECT_NE(text.find("own total"), std::string::npos);
  EXPECT_NE(text.find("0.0"), std::string::npos);
}

TEST_F(InterfaceTest, FrameworkOnlyModeTracksWithoutAccounting) {
  EAndroid framework_only(server_, Mode::kFrameworkOnly);
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  // Windows are tracked...
  EXPECT_EQ(framework_only.tracker().open_count(), 1u);
  // ...but slices are dropped.
  framework_only.on_slice(slice(10.0, 100.0));
  EXPECT_DOUBLE_EQ(framework_only.engine().true_total_mj(), 0.0);
}

}  // namespace
}  // namespace eandroid::core
