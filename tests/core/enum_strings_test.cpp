// Locks every enum's string table to its values (catches silently-added
// enumerators whose to_string falls through to "?").
#include <gtest/gtest.h>

#include <string>

#include "core/detector.h"
#include "core/window.h"
#include "framework/activity_manager.h"
#include "framework/events.h"
#include "sim/fault.h"

namespace eandroid {
namespace {

TEST(EnumStringsTest, FwEventTypesAllNamed) {
  using framework::FwEventType;
  for (FwEventType type : {
           FwEventType::kActivityStart, FwEventType::kActivityMoveToFront,
           FwEventType::kActivityInterrupt, FwEventType::kForegroundChange,
           FwEventType::kActivityFinish, FwEventType::kAppDestroyed,
           FwEventType::kServiceStart, FwEventType::kServiceStop,
           FwEventType::kServiceStopSelf, FwEventType::kServiceBind,
           FwEventType::kServiceUnbind, FwEventType::kBrightnessChange,
           FwEventType::kScreenModeChange, FwEventType::kScreenOn,
           FwEventType::kScreenOff, FwEventType::kWakelockAcquire,
           FwEventType::kWakelockRelease, FwEventType::kBroadcastDelivered,
           FwEventType::kAlarmFired, FwEventType::kPushDelivered,
           FwEventType::kAnr,
       }) {
    EXPECT_STRNE(framework::to_string(type), "unknown");
    EXPECT_STRNE(framework::to_string(type), "?");
  }
  EXPECT_STREQ(framework::to_string(FwEventType::kActivityStart),
               "activity_start");
  EXPECT_STREQ(framework::to_string(FwEventType::kPushDelivered),
               "push_delivered");
}

TEST(EnumStringsTest, WindowKindsAllNamed) {
  using core::WindowKind;
  for (WindowKind kind :
       {WindowKind::kActivity, WindowKind::kInterrupt, WindowKind::kService,
        WindowKind::kScreen, WindowKind::kWakelock, WindowKind::kPush}) {
    EXPECT_STRNE(core::to_string(kind), "?");
  }
  EXPECT_STREQ(core::to_string(WindowKind::kWakelock), "wakelock");
}

TEST(EnumStringsTest, ActivityStatesAllNamed) {
  using State = framework::ActivityRecord::State;
  for (State state :
       {State::kResumed, State::kPaused, State::kStopped, State::kDestroyed}) {
    EXPECT_STRNE(framework::to_string(state), "?");
  }
  EXPECT_STREQ(framework::to_string(State::kResumed), "resumed");
}

TEST(EnumStringsTest, FaultKindsAllNamed) {
  using sim::FaultKind;
  int named = 0;
  for (FaultKind kind :
       {FaultKind::kKillApp, FaultKind::kKillLockHolder, FaultKind::kHangApp,
        FaultKind::kBinderFailure, FaultKind::kDropBroadcast,
        FaultKind::kDelayAlarms, FaultKind::kBatteryExhaust}) {
    EXPECT_STRNE(sim::to_string(kind), "?");
    ++named;
  }
  EXPECT_EQ(named, sim::kFaultKindCount);
  EXPECT_STREQ(sim::to_string(FaultKind::kBatteryExhaust), "battery_exhaust");
}

TEST(EnumStringsTest, AlertKindsAllNamed) {
  using core::AlertKind;
  for (AlertKind kind :
       {AlertKind::kCollateralAttacker, AlertKind::kScreenAbuser,
        AlertKind::kNoSleepBug}) {
    EXPECT_STRNE(core::to_string(kind), "?");
  }
}

}  // namespace
}  // namespace eandroid
