// WindowTracker tests: one section per Fig 5 state machine.
#include "core/window_tracker.h"

#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::core {
namespace {

using framework::BrightnessMode;
using framework::Intent;
using framework::Manifest;
using framework::Permission;
using framework::ServiceDecl;
using framework::WakelockType;
using framework::testing::RecordingApp;
using framework::testing::simple_manifest;

class TrackerTest : public ::testing::Test {
 protected:
  TrackerTest() : server_(sim_) {
    install("com.a");
    install("com.b");
    Manifest svc = simple_manifest("com.svc");
    svc.services.push_back(ServiceDecl{"Work", /*exported=*/true, {}});
    server_.install(std::move(svc), std::make_unique<RecordingApp>());

    Manifest power = simple_manifest("com.power");
    power.permissions = {Permission::kWakeLock, Permission::kWriteSettings};
    server_.install(std::move(power), std::make_unique<RecordingApp>());

    server_.boot();
    tracker_ = std::make_unique<WindowTracker>(server_);
  }

  void install(const std::string& package) {
    server_.install(simple_manifest(package),
                    std::make_unique<RecordingApp>());
  }
  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }
  framework::Context& ctx(const std::string& package) {
    server_.ensure_process(uid(package));
    return server_.context_of(uid(package));
  }

  sim::Simulator sim_;
  framework::SystemServer server_;
  std::unique_ptr<WindowTracker> tracker_;
};

// --- Fig 5a: activity windows ---

TEST_F(TrackerTest, CrossAppStartOpensActivityWindow) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  EXPECT_TRUE(tracker_->has_window(WindowKind::kActivity, uid("com.a"),
                                   uid("com.b")));
}

TEST_F(TrackerTest, UserLaunchOpensNoWindow) {
  server_.user_launch("com.a");
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, SameAppStartOpensNoWindow) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.a", "Main"));
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, ActivityWindowClosesWhenUserRestartsDrivenApp) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ASSERT_EQ(tracker_->open_count(), 1u);
  server_.user_launch("com.b");  // "attack ends when the app is started again"
  EXPECT_FALSE(tracker_->has_window(WindowKind::kActivity, uid("com.a"),
                                    uid("com.b")));
}

TEST_F(TrackerTest, ActivityWindowClosesOnUserMoveToFront) {
  server_.user_launch("com.b");
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  ASSERT_TRUE(tracker_->has_window(WindowKind::kActivity, uid("com.a"),
                                   uid("com.b")));
  server_.user_press_home();
  server_.user_switch_to("com.b");  // recents
  EXPECT_FALSE(tracker_->has_window(WindowKind::kActivity, uid("com.a"),
                                    uid("com.b")));
}

TEST_F(TrackerTest, DuplicateStartKeepsOneWindowPerDriver) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  server_.user_switch_to("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  int count = 0;
  for (const auto& [id, w] : tracker_->open_windows()) {
    if (w.kind == WindowKind::kActivity) ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST_F(TrackerTest, WindowClosesWhenDrivenAppDies) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  server_.kill_app(uid("com.b"));
  EXPECT_EQ(tracker_->open_count(), 0u);
}

// --- Fig 5b: interrupt windows ---

TEST_F(TrackerTest, AppSendingHomeOpensInterruptWindow) {
  server_.user_launch("com.a");
  ctx("com.b").start_home();
  EXPECT_TRUE(tracker_->has_window(WindowKind::kInterrupt, uid("com.b"),
                                   uid("com.a")));
}

TEST_F(TrackerTest, UserHomeOpensNoInterruptWindow) {
  server_.user_launch("com.a");
  server_.user_press_home();
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, InterruptWindowClosesWhenVictimResumes) {
  server_.user_launch("com.a");
  ctx("com.b").start_home();
  ASSERT_EQ(tracker_->open_count(), 1u);
  server_.user_switch_to("com.a");
  EXPECT_EQ(tracker_->open_count(), 0u);
}

// --- Fig 5c: service windows ---

TEST_F(TrackerTest, CrossAppServiceStartOpensWindow) {
  ctx("com.a").start_service(Intent::explicit_for("com.svc", "Work"));
  const Window* window =
      tracker_->find_window(WindowKind::kService, uid("com.a"), uid("com.svc"));
  ASSERT_NE(window, nullptr);
  EXPECT_TRUE(window->started);
  EXPECT_EQ(window->component, "Work");
}

TEST_F(TrackerTest, OwnServiceStartOpensNoWindow) {
  ctx("com.svc").start_service(Intent::explicit_for("com.svc", "Work"));
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, ServiceWindowClosesOnStop) {
  ctx("com.a").start_service(Intent::explicit_for("com.svc", "Work"));
  ctx("com.a").stop_service(Intent::explicit_for("com.svc", "Work"));
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, ServiceWindowClosesOnStopSelf) {
  ctx("com.a").start_service(Intent::explicit_for("com.svc", "Work"));
  ctx("com.svc").stop_self("Work");
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, BindingKeepsWindowOpenThroughStop) {
  // The attack #3 shape: bind + start, stop clears only the started leg.
  const auto binding =
      ctx("com.a").bind_service(Intent::explicit_for("com.svc", "Work"));
  ASSERT_TRUE(binding.has_value());
  ctx("com.a").start_service(Intent::explicit_for("com.svc", "Work"));
  ctx("com.a").stop_service(Intent::explicit_for("com.svc", "Work"));
  EXPECT_TRUE(tracker_->has_window(WindowKind::kService, uid("com.a"),
                                   uid("com.svc")));
  ctx("com.a").unbind_service(*binding);
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, ClientDeathClosesServiceWindow) {
  ctx("com.a").bind_service(Intent::explicit_for("com.svc", "Work"));
  ASSERT_EQ(tracker_->open_count(), 1u);
  server_.kill_app(uid("com.a"));
  EXPECT_EQ(tracker_->open_count(), 0u);
}

// --- Fig 5d: screen windows ---

TEST_F(TrackerTest, BackgroundBrightnessIncreaseOpensScreenWindow) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  server_.user_set_brightness(100);
  ctx("com.power").set_brightness(200);
  const Window* window = tracker_->find_window(
      WindowKind::kScreen, uid("com.power"), kernelsim::Uid{});
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->baseline_brightness, 100);
}

TEST_F(TrackerTest, ForcedManualModeOpensScreenWindow) {
  // Auto mode; the malware stores a high value then flips to manual.
  ctx("com.power").set_brightness(250);
  EXPECT_EQ(tracker_->open_count(), 0u);  // stored, not applied
  ctx("com.power").set_screen_mode(BrightnessMode::kManual);
  const Window* window = tracker_->find_window(
      WindowKind::kScreen, uid("com.power"), kernelsim::Uid{});
  ASSERT_NE(window, nullptr);
  EXPECT_EQ(window->baseline_brightness, 102);  // panel level pre-switch
}

TEST_F(TrackerTest, UserBrightnessChangeClosesScreenWindows) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  ctx("com.power").set_brightness(220);
  ASSERT_EQ(tracker_->open_count(), 1u);
  server_.user_set_brightness(90);
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, AttackerRestoringBrightnessClosesWindow) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  server_.user_set_brightness(100);
  ctx("com.power").set_brightness(220);
  ASSERT_EQ(tracker_->open_count(), 1u);
  ctx("com.power").set_brightness(100);  // back to baseline
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, PartialDecreaseKeepsWindowOpen) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  server_.user_set_brightness(100);
  ctx("com.power").set_brightness(220);
  ctx("com.power").set_brightness(150);  // still above baseline 100
  EXPECT_EQ(tracker_->open_count(), 1u);
}

TEST_F(TrackerTest, SwitchToAutoClosesScreenWindows) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  ctx("com.power").set_brightness(220);
  ASSERT_EQ(tracker_->open_count(), 1u);
  server_.user_set_screen_mode(BrightnessMode::kAuto);
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, BrightnessDecreaseAloneOpensNothing) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  server_.user_set_brightness(200);
  ctx("com.power").set_brightness(50);
  EXPECT_EQ(tracker_->open_count(), 0u);
}

// --- Fig 5e: wakelock windows ---

TEST_F(TrackerTest, BackgroundAcquireOpensWakelockWindow) {
  // com.power is not foreground (launcher is).
  ctx("com.power").acquire_wakelock(WakelockType::kScreenBright, "t");
  EXPECT_TRUE(tracker_->has_window(WindowKind::kWakelock, uid("com.power"),
                                   kernelsim::Uid{}));
}

TEST_F(TrackerTest, ForegroundAcquireOpensNoWindow) {
  server_.user_launch("com.power");
  ctx("com.power").acquire_wakelock(WakelockType::kScreenBright, "t");
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, PartialWakelockOpensNoWindow) {
  ctx("com.power").acquire_wakelock(WakelockType::kPartial, "t");
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, LeavingForegroundWithHeldLockOpensWindow) {
  server_.user_launch("com.power");
  ctx("com.power").acquire_wakelock(WakelockType::kScreenBright, "t");
  EXPECT_EQ(tracker_->open_count(), 0u);
  server_.user_press_home();  // left foreground without releasing
  EXPECT_TRUE(tracker_->has_window(WindowKind::kWakelock, uid("com.power"),
                                   kernelsim::Uid{}));
}

TEST_F(TrackerTest, ReleaseClosesWakelockWindow) {
  const auto lock =
      ctx("com.power").acquire_wakelock(WakelockType::kScreenBright, "t");
  ASSERT_EQ(tracker_->open_count(), 1u);
  ctx("com.power").release_wakelock(*lock);
  EXPECT_EQ(tracker_->open_count(), 0u);
}

TEST_F(TrackerTest, DeathReleaseClosesWakelockWindow) {
  ctx("com.power").acquire_wakelock(WakelockType::kScreenBright, "t");
  ASSERT_EQ(tracker_->open_count(), 1u);
  server_.kill_app(uid("com.power"));
  EXPECT_EQ(tracker_->open_count(), 0u);
}

// --- misc ---

TEST_F(TrackerTest, DisabledTrackerIgnoresEvents) {
  tracker_->set_enabled(false);
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  EXPECT_EQ(tracker_->open_count(), 0u);
  EXPECT_EQ(tracker_->opened_total(), 0u);
}

TEST_F(TrackerTest, TraceRecordsOpensAndCloses) {
  server_.user_launch("com.a");
  ctx("com.a").start_activity(Intent::explicit_for("com.b", "Main"));
  server_.user_launch("com.b");
  ASSERT_GE(tracker_->trace().size(), 2u);
  EXPECT_TRUE(tracker_->trace().front().opened);
  EXPECT_FALSE(tracker_->trace().back().opened);
  EXPECT_EQ(tracker_->opened_total(), 1u);
  EXPECT_EQ(tracker_->closed_total(), 1u);
}

}  // namespace
}  // namespace eandroid::core
