#include "core/advisor.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace eandroid::core {
namespace {

using apps::DemoApp;
using apps::Testbed;

TEST(AdvisorTest, TooShortObservationIsEmpty) {
  Testbed bed;
  bed.start();
  bed.run_for(sim::seconds(2));
  BatteryAdvisor advisor(bed.server(), *bed.eandroid());
  const BatteryForecast forecast = advisor.forecast(sim::seconds(10));
  EXPECT_TRUE(forecast.advice.empty());
  EXPECT_DOUBLE_EQ(forecast.average_draw_mw, 0.0);
  EXPECT_NE(BatteryAdvisor::render(forecast).find("not enough observation"),
            std::string::npos);
}

TEST(AdvisorTest, ForecastMatchesObservedDraw) {
  Testbed bed;
  apps::DemoAppSpec spec = apps::message_spec();
  spec.foreground_cpu = 0.3;
  bed.install<DemoApp>(spec);
  bed.start();
  bed.server().user_launch("com.example.message");
  for (int i = 0; i < 3; ++i) {
    bed.sim().run_for(sim::seconds(20));
    bed.server().user_tap(1, 1);
  }
  bed.run_for(sim::Duration(0));
  BatteryAdvisor advisor(bed.server(), *bed.eandroid());
  const BatteryForecast forecast = advisor.forecast();
  // Screen ~545 + idle 150 + app 300 ≈ 995 mW.
  EXPECT_NEAR(forecast.average_draw_mw, 995.0, 30.0);
  EXPECT_NEAR(forecast.lifetime_h,
              bed.server().battery().capacity_mj() /
                  forecast.average_draw_mw / 3600.0,
              1e-9);
  EXPECT_LE(forecast.remaining_h, forecast.lifetime_h);
}

TEST(AdvisorTest, MalwareTopsTheAdviceIncludingCollateral) {
  Testbed bed;
  apps::DemoAppSpec victim = apps::victim_spec();
  victim.wakelock_bug = false;
  victim.exit_dialog = false;
  bed.install<DemoApp>(victim);
  bed.install<apps::BinderMalware>(victim.package, DemoApp::kService);
  bed.start();
  (void)bed.context_of(apps::BinderMalware::kPackage);
  bed.server().user_launch(victim.package);
  bed.context_of(victim.package)
      .start_service(framework::Intent::explicit_for(victim.package,
                                                     DemoApp::kService));
  bed.sim().run_for(sim::seconds(1));
  bed.context_of(victim.package)
      .stop_service(framework::Intent::explicit_for(victim.package,
                                                    DemoApp::kService));
  bed.server().user_press_home();
  for (int i = 0; i < 3; ++i) {
    bed.sim().run_for(sim::seconds(20));
    bed.server().user_tap(1, 1);
  }
  bed.run_for(sim::Duration(0));

  BatteryAdvisor advisor(bed.server(), *bed.eandroid());
  const BatteryForecast forecast = advisor.forecast();
  ASSERT_GE(forecast.advice.size(), 2u);
  // Removing the malware (which owns the collateral) buys at least as
  // much as removing the victim.
  const AppAdvice* malware = nullptr;
  const AppAdvice* victim_advice = nullptr;
  for (const auto& advice : forecast.advice) {
    if (advice.package == apps::BinderMalware::kPackage) malware = &advice;
    if (advice.package == victim.package) victim_advice = &advice;
  }
  ASSERT_NE(malware, nullptr);
  ASSERT_NE(victim_advice, nullptr);
  EXPECT_GT(malware->gain_h, 0.0);
  EXPECT_GE(malware->responsible_mw, victim_advice->responsible_mw * 0.9);
}

TEST(AdvisorTest, SystemAppsNeverAdvised) {
  Testbed bed;
  bed.start();
  bed.run_for(sim::seconds(30));
  BatteryAdvisor advisor(bed.server(), *bed.eandroid());
  for (const auto& advice : advisor.forecast().advice) {
    EXPECT_NE(advice.package, framework::kLauncherPackage);
    EXPECT_NE(advice.package, framework::kSystemUiPackage);
  }
}

TEST(AdvisorTest, RenderListsAdvice) {
  Testbed bed;
  apps::DemoAppSpec spec = apps::message_spec();
  spec.foreground_cpu = 0.4;
  bed.install<DemoApp>(spec);
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(20));
  BatteryAdvisor advisor(bed.server(), *bed.eandroid());
  const std::string text = BatteryAdvisor::render(advisor.forecast());
  EXPECT_NE(text.find("battery advisor"), std::string::npos);
  EXPECT_NE(text.find("com.example.message"), std::string::npos);
  EXPECT_NE(text.find("buys +"), std::string::npos);
}

}  // namespace
}  // namespace eandroid::core
