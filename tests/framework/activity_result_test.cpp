// startActivityForResult / setResult round trips — the Fig 1 mechanism by
// which "the video is returned to the Message app".
#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"

namespace eandroid::framework {
namespace {

using apps::DemoApp;
using apps::Testbed;

class ActivityResultTest : public ::testing::Test {
 protected:
  ActivityResultTest() {
    message_ = bed_.install<DemoApp>(apps::message_spec());
    bed_.install<DemoApp>(apps::camera_spec());
    bed_.start();
    bed_.server().user_launch("com.example.message");
  }
  Testbed bed_;
  DemoApp* message_ = nullptr;
};

TEST_F(ActivityResultTest, CaptureReturnsOkResult) {
  bed_.context_of("com.example.message")
      .start_activity_for_result(
          Intent::implicit("android.media.action.VIDEO_CAPTURE"), 42);
  bed_.sim().run_for(sim::seconds(31));  // capture auto-finishes at 30 s
  ASSERT_EQ(message_->results_received().size(), 1u);
  EXPECT_EQ(message_->results_received()[0].first, 42);
  EXPECT_TRUE(message_->results_received()[0].second);
  // And the requester is foreground again.
  EXPECT_EQ(bed_.server().activities().foreground_uid(),
            bed_.uid_of("com.example.message"));
}

TEST_F(ActivityResultTest, UserBackDeliversCancelled) {
  bed_.context_of("com.example.message")
      .start_activity_for_result(
          Intent::implicit("android.media.action.VIDEO_CAPTURE"), 7);
  bed_.sim().run_for(sim::seconds(2));
  bed_.server().user_press_back();  // user aborts the capture
  ASSERT_EQ(message_->results_received().size(), 1u);
  EXPECT_EQ(message_->results_received()[0].first, 7);
  EXPECT_FALSE(message_->results_received()[0].second);
}

TEST_F(ActivityResultTest, PlainStartDeliversNothing) {
  bed_.context_of("com.example.message")
      .start_activity(Intent::implicit("android.media.action.VIDEO_CAPTURE"));
  bed_.sim().run_for(sim::seconds(31));
  EXPECT_TRUE(message_->results_received().empty());
}

TEST_F(ActivityResultTest, ResultSurvivesRequesterInBackground) {
  bed_.context_of("com.example.message")
      .start_activity_for_result(
          Intent::implicit("android.media.action.VIDEO_CAPTURE"), 1);
  // The user wanders off to the launcher mid-capture.
  bed_.server().user_press_home();
  bed_.sim().run_for(sim::seconds(31));
  // The capture's auto-finish only fires while it was resumed; switch the
  // task forward and let it complete.
  bed_.server().user_switch_to("com.example.message");
  bed_.sim().run_for(sim::seconds(31));
  ASSERT_EQ(message_->results_received().size(), 1u);
  EXPECT_TRUE(message_->results_received()[0].second);
}

TEST_F(ActivityResultTest, DeadRequesterIsSkipped) {
  bed_.context_of("com.example.message")
      .start_activity_for_result(
          Intent::implicit("android.media.action.VIDEO_CAPTURE"), 9);
  bed_.server().kill_app(bed_.uid_of("com.example.message"));
  bed_.sim().run_for(sim::seconds(31));  // no crash, no delivery
  EXPECT_TRUE(message_->results_received().empty());
}

}  // namespace
}  // namespace eandroid::framework
