// Crash recovery: service restart backoff (ActiveServices-style doubling
// with reset window), the ANR watchdog, and the checked no-op semantics of
// kill_app — including energy conservation across the crash/restart and
// ANR-kill boundaries.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "apps/demo_app.h"
#include "apps/testbed.h"
#include "framework/service_manager.h"
#include "framework/system_server.h"
#include "kernel/types.h"
#include "sim/check.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::EventLog;
using testing::RecordingApp;

class RecoveryTest : public ::testing::Test {
 protected:
  RecoveryTest() : server_(sim_) {
    auto victim = std::make_unique<RecordingApp>();
    victim_ = victim.get();
    Manifest m = testing::simple_manifest("com.victim");
    m.services.push_back(ServiceDecl{"Work", /*exported=*/true, {}});
    server_.install(std::move(m), std::move(victim));
    server_.install(testing::simple_manifest("com.client"),
                    std::make_unique<RecordingApp>());
    server_.boot();
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }

  Intent work_intent() { return Intent::explicit_for("com.victim", "Work"); }

  /// Starts the service from com.client and runs past the cold-start
  /// dispatch so onStartCommand has been delivered once.
  void start_and_deliver() {
    ASSERT_TRUE(server_.services().start_service(uid("com.client"),
                                                 work_intent()));
    sim_.run_for(ServiceManager::kStartCommandDispatch);
    ASSERT_EQ(victim_->count("svc_start:Work"), 1);
  }

  bool running() { return server_.services().running("com.victim", "Work"); }
  bool restart_pending() {
    return server_.services().restart_pending("com.victim", "Work");
  }
  int crash_count() {
    return server_.services().crash_count("com.victim", "Work");
  }
  sim::Duration next_delay() {
    return server_.services().next_restart_delay("com.victim", "Work");
  }

  sim::Simulator sim_;
  SystemServer server_;
  RecordingApp* victim_ = nullptr;
};

TEST_F(RecoveryTest, CrashedStartedServiceRestartsAfterBaseDelay) {
  start_and_deliver();
  server_.kill_app(uid("com.victim"));
  EXPECT_FALSE(running());
  EXPECT_TRUE(restart_pending());
  EXPECT_EQ(crash_count(), 1);

  sim_.run_for(ServiceManager::kRestartBase - sim::millis(10));
  EXPECT_FALSE(running());  // still inside the backoff
  sim_.run_for(sim::millis(20));
  EXPECT_TRUE(running());
  EXPECT_FALSE(restart_pending());
  EXPECT_EQ(server_.services().restarts_total(), 1u);
  EXPECT_EQ(victim_->count("svc_create:Work"), 2);

  // The redelivered onStartCommand arrives after the dispatch latency.
  sim_.run_for(ServiceManager::kStartCommandDispatch);
  EXPECT_EQ(victim_->count("svc_start:Work"), 2);
}

TEST_F(RecoveryTest, RestartBackoffDoublesUpToCap) {
  start_and_deliver();
  sim::Duration expected = ServiceManager::kRestartBase;
  for (int crash = 1; crash <= 6; ++crash) {
    server_.kill_app(uid("com.victim"));
    ASSERT_TRUE(restart_pending());
    EXPECT_EQ(crash_count(), crash);
    // Wait out this crash's delay (plus the dispatch) to get the next.
    sim_.run_for(expected + sim::millis(10));
    ASSERT_TRUE(running());
    expected = expected * 2;
    if (expected > ServiceManager::kRestartMax) {
      expected = ServiceManager::kRestartMax;
    }
    EXPECT_EQ(next_delay().micros(), expected.micros());
  }
  // After six crashes in quick succession the next delay is the ceiling.
  EXPECT_EQ(next_delay().micros(), ServiceManager::kRestartMax.micros());
}

TEST_F(RecoveryTest, BackoffResetsAfterCleanRun) {
  start_and_deliver();
  server_.kill_app(uid("com.victim"));
  sim_.run_for(ServiceManager::kRestartBase + sim::millis(10));
  ASSERT_TRUE(running());
  EXPECT_EQ(crash_count(), 1);

  // A full reset window of clean running starts the backoff over.
  sim_.run_for(ServiceManager::kRestartResetWindow);
  server_.kill_app(uid("com.victim"));
  EXPECT_EQ(crash_count(), 1);  // reset to 0, then this crash
  sim_.run_for(ServiceManager::kRestartBase + sim::millis(10));
  EXPECT_TRUE(running());
}

TEST_F(RecoveryTest, StopServiceCancelsPendingRestart) {
  start_and_deliver();
  server_.kill_app(uid("com.victim"));
  ASSERT_TRUE(restart_pending());

  EXPECT_TRUE(server_.services().stop_service(uid("com.client"),
                                              work_intent()));
  EXPECT_FALSE(restart_pending());
  sim_.run_for(sim::seconds(5));
  EXPECT_FALSE(running());
  EXPECT_EQ(victim_->count("svc_create:Work"), 1);  // never came back
  EXPECT_EQ(server_.services().restarts_total(), 0u);
}

TEST_F(RecoveryTest, ExplicitStartSupersedesPendingRestart) {
  start_and_deliver();
  server_.kill_app(uid("com.victim"));
  ASSERT_TRUE(restart_pending());

  EXPECT_TRUE(server_.services().start_service(uid("com.client"),
                                               work_intent()));
  EXPECT_FALSE(restart_pending());
  EXPECT_TRUE(running());
  sim_.run_for(sim::seconds(5));
  // Exactly one redelivery from the explicit start; the cancelled restart
  // contributes nothing.
  EXPECT_EQ(victim_->count("svc_start:Work"), 2);
  EXPECT_EQ(server_.services().restarts_total(), 0u);
}

TEST_F(RecoveryTest, BindAbsorbsPendingRestart) {
  // Found by the scenario fuzzer (tests/fuzz/corpus/
  // bind_revives_crashed_service.prog): a bind inside the backoff window
  // revives the host immediately, so the crash-restart collapses into
  // the bind's bring-up — counted and attributed like the deferred
  // restart — and the stale timer must not fire later on the live
  // service (it used to force a bind-only service to started).
  start_and_deliver();
  server_.kill_app(uid("com.victim"));
  ASSERT_TRUE(restart_pending());

  ASSERT_TRUE(server_.services()
                  .bind_service(uid("com.client"), work_intent())
                  .has_value());
  EXPECT_FALSE(restart_pending());
  EXPECT_TRUE(running());
  EXPECT_EQ(server_.services().restarts_total(), 1u);

  // Past the original backoff instant: exactly one restart, one
  // redelivered start command.
  sim_.run_for(ServiceManager::kRestartBase + sim::seconds(5));
  EXPECT_EQ(server_.services().restarts_total(), 1u);
  EXPECT_EQ(victim_->count("svc_create:Work"), 2);
  EXPECT_EQ(victim_->count("svc_start:Work"), 2);
}

TEST_F(RecoveryTest, RestartKeepsOriginalStarterAsDrivingUid) {
  EventLog log(server_.events());
  start_and_deliver();
  server_.kill_app(uid("com.victim"));
  sim_.run_for(ServiceManager::kRestartBase + sim::millis(10));
  ASSERT_TRUE(running());

  // Anti-laundering: the framework-initiated restart is still attributed
  // to the uid that called startService before the crash.
  const FwEvent* restart = log.last(FwEventType::kServiceStart);
  ASSERT_NE(restart, nullptr);
  EXPECT_EQ(restart->driving, uid("com.client"));
  EXPECT_EQ(restart->driven, uid("com.victim"));
}

TEST_F(RecoveryTest, HostDeathInsideDispatchWindowCancelsDelivery) {
  // Regression: the host dies between startService() and the pending
  // onStartCommand event; the stale delivery must not fire into the
  // quickly re-started service, or it would see the command twice.
  ASSERT_TRUE(server_.services().start_service(uid("com.client"),
                                               work_intent()));
  ASSERT_EQ(victim_->count("svc_start:Work"), 0);  // still in the window
  server_.kill_app(uid("com.victim"));
  ASSERT_TRUE(server_.services().start_service(uid("com.client"),
                                               work_intent()));
  sim_.run_for(sim::millis(20));
  EXPECT_EQ(victim_->count("svc_start:Work"), 1);
  EXPECT_EQ(victim_->count("svc_create:Work"), 2);
}

TEST_F(RecoveryTest, HungAppIsKilledAfterAnrTimeout) {
  const kernelsim::Uid client = uid("com.client");
  server_.broadcasts().register_receiver(client, "test.PING");
  server_.ensure_process(client);
  server_.set_app_hung(client, true);
  ASSERT_TRUE(server_.app_hung(client));

  EventLog log(server_.events());
  server_.broadcasts().send_broadcast(kernelsim::kSystemUid, "test.PING",
                                      /*by_system=*/true);
  EXPECT_EQ(server_.main_queue_depth(client), 1u);

  sim_.run_for(SystemServer::kAnrTimeout - sim::millis(1));
  EXPECT_TRUE(server_.pid_of(client).valid());
  EXPECT_EQ(server_.anr_kills(), 0u);

  sim_.run_for(sim::millis(2));
  EXPECT_EQ(server_.anr_kills(), 1u);
  EXPECT_FALSE(server_.pid_of(client).valid());
  EXPECT_EQ(server_.main_queue_depth(client), 0u);
  EXPECT_EQ(log.count(FwEventType::kAnr), 1);
  const FwEvent* anr = log.last(FwEventType::kAnr);
  ASSERT_NE(anr, nullptr);
  EXPECT_EQ(anr->driven, client);
}

TEST_F(RecoveryTest, UnhangingDrainsQueueAndAvertsAnr) {
  const kernelsim::Uid client = uid("com.client");
  server_.broadcasts().register_receiver(client, "test.PING");
  server_.ensure_process(client);
  server_.set_app_hung(client, true);
  server_.broadcasts().send_broadcast(kernelsim::kSystemUid, "test.PING",
                                      /*by_system=*/true);
  ASSERT_EQ(server_.main_queue_depth(client), 1u);

  sim_.run_for(sim::seconds(5));
  server_.set_app_hung(client, false);
  EXPECT_EQ(server_.main_queue_depth(client), 0u);  // drained in order

  sim_.run_for(sim::seconds(10));
  EXPECT_EQ(server_.anr_kills(), 0u);
  EXPECT_TRUE(server_.pid_of(client).valid());
}

TEST_F(RecoveryTest, AnrCheckIsDisarmedByDeathAndRespawn) {
  const kernelsim::Uid client = uid("com.client");
  server_.broadcasts().register_receiver(client, "test.PING");
  server_.ensure_process(client);
  server_.set_app_hung(client, true);
  server_.broadcasts().send_broadcast(kernelsim::kSystemUid, "test.PING",
                                      /*by_system=*/true);

  sim_.run_for(sim::seconds(2));
  server_.kill_app(client);       // something else kills the hung app...
  server_.ensure_process(client); // ...and it comes right back

  // The stale watchdog check must not kill the fresh process for its
  // predecessor's hang.
  sim_.run_for(sim::seconds(15));
  EXPECT_EQ(server_.anr_kills(), 0u);
  EXPECT_TRUE(server_.pid_of(client).valid());
}

TEST_F(RecoveryTest, KillAppUnknownUidIsCheckedError) {
  EXPECT_THROW(server_.kill_app(kernelsim::Uid{424242}), sim::CheckFailure);
}

TEST_F(RecoveryTest, KillAppDeadUidIsNoOp) {
  const kernelsim::Uid client = uid("com.client");
  server_.ensure_process(client);
  server_.kill_app(client);
  ASSERT_FALSE(server_.pid_of(client).valid());
  EXPECT_NO_THROW(server_.kill_app(client));  // double-kills are routine
}

TEST_F(RecoveryTest, SetAppHungUnknownUidIsCheckedError) {
  EXPECT_THROW(server_.set_app_hung(kernelsim::Uid{424242}, true),
               sim::CheckFailure);
}

TEST_F(RecoveryTest, HangingProcesslessAppIsNoOp) {
  server_.set_app_hung(uid("com.client"), true);
  EXPECT_FALSE(server_.app_hung(uid("com.client")));
}

// --- Backoff reset, pinned through the trace ---

TEST(RecoveryTraceTest, BackoffDelayResetsAfterCleanWindowAndTracesInOrder) {
  // Grow the backoff through three crashes (1 s, 2 s, 4 s), run one full
  // clean reset window, crash again: the fourth restart must be back at
  // the base delay, and the trace must show exactly that history —
  // alternating svc.backoff (arg = delay µs) / svc.restart (arg = crash
  // count) events in chronological order.
#if defined(EANDROID_TRACE_COMPILED_OUT)
  GTEST_SKIP() << "EANDROID_TRACE compiled out";
#else
  sim::Simulator sim;
  SystemServer server(sim, hw::nexus4_params(),
                      obs::ObsOptions{.trace = true});
  Manifest m = testing::simple_manifest("com.victim");
  m.services.push_back(ServiceDecl{"Work", /*exported=*/true, {}});
  server.install(std::move(m), std::make_unique<RecordingApp>());
  server.install(testing::simple_manifest("com.client"),
                 std::make_unique<RecordingApp>());
  server.boot();

  const kernelsim::Uid victim = server.packages().find("com.victim")->uid;
  const kernelsim::Uid client = server.packages().find("com.client")->uid;
  const Intent work = Intent::explicit_for("com.victim", "Work");
  ASSERT_TRUE(server.services().start_service(client, work));
  sim.run_for(ServiceManager::kStartCommandDispatch);

  sim::Duration delay = ServiceManager::kRestartBase;
  for (int crash = 1; crash <= 3; ++crash) {
    server.kill_app(victim);
    sim.run_for(delay + sim::millis(10));
    ASSERT_TRUE(server.services().running("com.victim", "Work"));
    delay = delay * 2;
  }
  ASSERT_EQ(server.services().next_restart_delay("com.victim", "Work")
                .micros(),
            delay.micros());  // grown to 8 s

  // One clean reset window, then the fourth crash restarts at base.
  sim.run_for(ServiceManager::kRestartResetWindow);
  server.kill_app(victim);
  sim.run_for(ServiceManager::kRestartBase - sim::millis(10));
  EXPECT_FALSE(server.services().running("com.victim", "Work"));
  sim.run_for(sim::millis(20));
  EXPECT_TRUE(server.services().running("com.victim", "Work"));
  EXPECT_EQ(server.services().crash_count("com.victim", "Work"), 1);
  EXPECT_EQ(server.services().restarts_total(), 4u);

  const obs::TraceRecorder* rec = server.obs().trace();
  ASSERT_NE(rec, nullptr);
  std::vector<std::string> names;
  std::vector<std::int64_t> args;
  std::int64_t last_t = 0;
  rec->for_each([&](const obs::TraceEvent& ev) {
    const std::string_view name = rec->names().routine_name(ev.name);
    if (name != "svc.backoff" && name != "svc.restart") return;
    EXPECT_GE(ev.t_us, last_t);  // chronological
    last_t = ev.t_us;
    EXPECT_EQ(ev.uid, static_cast<std::int32_t>(victim.value));
    names.emplace_back(name);
    args.push_back(ev.arg);
  });
  const std::vector<std::string> expected_names{
      "svc.backoff", "svc.restart", "svc.backoff", "svc.restart",
      "svc.backoff", "svc.restart", "svc.backoff", "svc.restart"};
  EXPECT_EQ(names, expected_names);
  const std::int64_t s = sim::seconds(1).micros();
  // Backoff delays 1 s → 2 s → 4 s, then back at 1 s after the clean
  // window; restart args carry the crash count, reset to 1 at the end.
  EXPECT_EQ(args, (std::vector<std::int64_t>{s, 1, 2 * s, 2, 4 * s, 3,
                                             s, 1}));
  EXPECT_EQ(server.obs().metrics().counter_value("fw.service_backoffs"), 4u);
  EXPECT_EQ(server.obs().metrics().counter_value("fw.service_restarts"), 4u);
#endif
}

// --- Energy conservation across the recovery boundaries ---

TEST(RecoveryEnergyTest, ServiceRestartConservesEnergy) {
  apps::Testbed bed;
  apps::DemoAppSpec spec = apps::victim_spec();
  spec.wakelock_bug = false;
  bed.install<apps::DemoApp>(spec);
  bed.start();

  bed.context_of(spec.package)
      .start_service(Intent::explicit_for(spec.package, apps::DemoApp::kService));
  bed.run_for(sim::seconds(3));
  bed.server().kill_app(bed.uid_of(spec.package));
  bed.run_for(sim::seconds(10));  // backoff elapses, service restarts

  EXPECT_EQ(bed.server().services().restarts_total(), 1u);
  EXPECT_TRUE(
      bed.server().services().running(spec.package, apps::DemoApp::kService));

  const double truth = bed.server().battery().consumed_total_mj();
  EXPECT_NEAR(bed.battery_stats().total_mj(), truth, 1e-3);
  EXPECT_NEAR(bed.power_tutor().total_mj(), truth, 1e-3);
  EXPECT_NEAR(bed.eandroid()->engine().true_total_mj(), truth, 1e-3);
}

TEST(RecoveryEnergyTest, AnrKillConservesEnergy) {
  apps::Testbed bed;
  apps::DemoAppSpec spec = apps::message_spec();
  bed.install<apps::DemoApp>(spec);
  bed.start();

  const kernelsim::Uid target = bed.uid_of(spec.package);
  bed.context_of(spec.package).register_receiver("test.PING");
  bed.server().set_app_hung(target, true);
  bed.server().broadcasts().send_broadcast(kernelsim::kSystemUid, "test.PING",
                                           /*by_system=*/true);
  bed.run_for(sim::seconds(15));

  EXPECT_EQ(bed.server().anr_kills(), 1u);
  EXPECT_FALSE(bed.server().pid_of(target).valid());

  const double truth = bed.server().battery().consumed_total_mj();
  EXPECT_NEAR(bed.battery_stats().total_mj(), truth, 1e-3);
  EXPECT_NEAR(bed.power_tutor().total_mj(), truth, 1e-3);
  EXPECT_NEAR(bed.eandroid()->engine().true_total_mj(), truth, 1e-3);
}

}  // namespace
}  // namespace eandroid::framework
