#include "framework/settings_provider.h"

#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::EventLog;
using testing::RecordingApp;

class SettingsTest : public ::testing::Test {
 protected:
  SettingsTest() : server_(sim_) {
    Manifest writer = testing::simple_manifest("com.writer");
    writer.permissions.push_back(Permission::kWriteSettings);
    server_.install(std::move(writer), std::make_unique<RecordingApp>());
    server_.install(testing::simple_manifest("com.plain"),
                    std::make_unique<RecordingApp>());
    server_.boot();
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }

  sim::Simulator sim_;
  SystemServer server_;
};

TEST_F(SettingsTest, DefaultsToAutoMode) {
  EXPECT_EQ(server_.settings().mode(), BrightnessMode::kAuto);
  EXPECT_EQ(server_.settings().effective_brightness(), 102);
  EXPECT_EQ(server_.screen().brightness(), 102);
}

TEST_F(SettingsTest, WriteRequiresPermission) {
  EXPECT_FALSE(server_.settings().set_brightness(uid("com.plain"), 200));
  EXPECT_TRUE(server_.settings().set_brightness(uid("com.writer"), 200));
  EXPECT_FALSE(
      server_.settings().set_mode(uid("com.plain"), BrightnessMode::kManual));
}

TEST_F(SettingsTest, UserWritesAlwaysAllowed) {
  EXPECT_TRUE(server_.settings().set_brightness(uid("com.plain"), 200,
                                                /*by_user=*/true));
}

TEST_F(SettingsTest, AutoModeStoresButDoesNotApply) {
  server_.settings().set_brightness(uid("com.writer"), 250);
  EXPECT_EQ(server_.settings().manual_setting(), 250);
  EXPECT_EQ(server_.screen().brightness(), 102);  // still the auto level
}

TEST_F(SettingsTest, SwitchToManualAppliesStoredValue) {
  server_.settings().set_brightness(uid("com.writer"), 250);
  EventLog log(server_.events());
  server_.settings().set_mode(uid("com.writer"), BrightnessMode::kManual);
  EXPECT_EQ(server_.screen().brightness(), 250);
  const FwEvent* change = log.last(FwEventType::kBrightnessChange);
  ASSERT_NE(change, nullptr);
  EXPECT_EQ(change->brightness_before, 102);
  EXPECT_EQ(change->brightness_after, 250);
  EXPECT_EQ(change->driving, uid("com.writer"));
  const FwEvent* mode = log.last(FwEventType::kScreenModeChange);
  ASSERT_NE(mode, nullptr);
  EXPECT_TRUE(mode->to_manual_mode);
}

TEST_F(SettingsTest, ManualModeWritesApplyImmediately) {
  server_.settings().set_mode(uid("com.writer"), BrightnessMode::kManual);
  EventLog log(server_.events());
  server_.settings().set_brightness(uid("com.writer"), 30);
  EXPECT_EQ(server_.screen().brightness(), 30);
  EXPECT_EQ(log.count(FwEventType::kBrightnessChange), 1);
}

TEST_F(SettingsTest, NoEventWhenValueUnchanged) {
  server_.settings().set_mode(uid("com.writer"), BrightnessMode::kManual);
  server_.settings().set_brightness(uid("com.writer"), 180);
  EventLog log(server_.events());
  server_.settings().set_brightness(uid("com.writer"), 180);
  EXPECT_EQ(log.count(FwEventType::kBrightnessChange), 0);
}

TEST_F(SettingsTest, SwitchBackToAutoRestoresAutoLevel) {
  server_.settings().set_brightness(uid("com.writer"), 250);
  server_.settings().set_mode(uid("com.writer"), BrightnessMode::kManual);
  server_.settings().set_mode(uid("com.writer"), BrightnessMode::kAuto);
  EXPECT_EQ(server_.screen().brightness(), 102);
}

TEST_F(SettingsTest, ValuesAreClamped) {
  server_.settings().set_mode(uid("com.writer"), BrightnessMode::kManual);
  server_.settings().set_brightness(uid("com.writer"), 5000);
  EXPECT_EQ(server_.screen().brightness(), 255);
  server_.settings().set_brightness(uid("com.writer"), -4);
  EXPECT_EQ(server_.screen().brightness(), 0);
}

TEST_F(SettingsTest, AutoLevelTracksAmbient) {
  EventLog log(server_.events());
  server_.settings().set_auto_level(40);
  EXPECT_EQ(server_.screen().brightness(), 40);
  const FwEvent* change = log.last(FwEventType::kBrightnessChange);
  ASSERT_NE(change, nullptr);
  EXPECT_EQ(change->driving, kernelsim::kSystemUid);
}

TEST_F(SettingsTest, UserBrightnessThroughSystemUi) {
  server_.user_set_screen_mode(BrightnessMode::kManual);
  EventLog log(server_.events());
  server_.user_set_brightness(77);
  const FwEvent* change = log.last(FwEventType::kBrightnessChange);
  ASSERT_NE(change, nullptr);
  EXPECT_TRUE(change->by_user);
  EXPECT_EQ(server_.screen().brightness(), 77);
}

}  // namespace
}  // namespace eandroid::framework
