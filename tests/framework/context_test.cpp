// Direct coverage of the Context API surface (the app-facing SDK analog).
#include "framework/context.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"

namespace eandroid::framework {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;
using apps::Testbed;

class ContextTest : public ::testing::Test {
 protected:
  ContextTest() {
    DemoAppSpec spec = apps::message_spec();
    spec.package = "com.ctx.app";
    spec.permissions = {Permission::kWakeLock, Permission::kWriteSettings};
    bed_.install<DemoApp>(spec);
    DemoAppSpec other = apps::message_spec();
    other.package = "com.ctx.other";
    bed_.install<DemoApp>(other);
    bed_.start();
  }
  Context& ctx() { return bed_.context_of("com.ctx.app"); }
  Testbed bed_;
};

TEST_F(ContextTest, IdentityAccessors) {
  EXPECT_EQ(ctx().package(), "com.ctx.app");
  EXPECT_EQ(ctx().uid(), bed_.uid_of("com.ctx.app"));
  EXPECT_TRUE(ctx().pid().valid());
}

TEST_F(ContextTest, IsForegroundTracksStack) {
  EXPECT_FALSE(ctx().is_foreground());
  bed_.server().user_launch("com.ctx.app");
  EXPECT_TRUE(ctx().is_foreground());
  bed_.server().user_press_home();
  EXPECT_FALSE(ctx().is_foreground());
}

TEST_F(ContextTest, CpuLoadKeysAreIndependent) {
  ctx().set_cpu_load("a", 0.2);
  ctx().set_cpu_load("b", 0.3);
  EXPECT_NEAR(bed_.server().cpu().instantaneous_utilization(), 0.5, 1e-9);
  ctx().clear_cpu_load("a");
  EXPECT_NEAR(bed_.server().cpu().instantaneous_utilization(), 0.3, 1e-9);
  ctx().set_cpu_load("b", 0.1);  // re-set adjusts in place
  EXPECT_NEAR(bed_.server().cpu().instantaneous_utilization(), 0.1, 1e-9);
  ctx().clear_cpu_load("missing");  // no-op
}

TEST_F(ContextTest, HardwareSessionsRoundTrip) {
  const hw::SessionId cam = ctx().camera_begin();
  const hw::SessionId gps = ctx().gps_begin();
  const hw::SessionId wifi = ctx().wifi_begin();
  const hw::SessionId audio = ctx().audio_begin();
  EXPECT_TRUE(bed_.server().camera().active());
  EXPECT_TRUE(bed_.server().gps().active());
  EXPECT_TRUE(bed_.server().wifi().active());
  EXPECT_TRUE(bed_.server().audio().active());
  ctx().camera_end(cam);
  ctx().gps_end(gps);
  ctx().wifi_end(wifi);
  ctx().audio_end(audio);
  EXPECT_FALSE(bed_.server().camera().active());
  EXPECT_FALSE(bed_.server().audio().active());
}

TEST_F(ContextTest, ScheduleAndEveryRunOnVirtualClock) {
  int shots = 0;
  int ticks = 0;
  ctx().schedule(sim::seconds(1), [&] { ++shots; });
  auto stop = ctx().every(sim::seconds(1), [&] { ++ticks; });
  bed_.sim().run_for(sim::seconds(3));
  EXPECT_EQ(shots, 1);
  EXPECT_EQ(ticks, 3);
  stop();
  bed_.sim().run_for(sim::seconds(3));
  EXPECT_EQ(ticks, 3);
}

TEST_F(ContextTest, NowMatchesSimulator) {
  bed_.sim().run_for(sim::seconds(7));
  EXPECT_EQ(ctx().now(), bed_.sim().now());
}

TEST_F(ContextTest, CpuBurstNeedsLiveProcess) {
  ctx().cpu_burst(sim::millis(100));
  bed_.server().kill_app(bed_.uid_of("com.ctx.app"));
  // Dead process: the burst is dropped, not crashed on.
  bed_.server().context_of(bed_.uid_of("com.ctx.app"))
      .cpu_burst(sim::millis(100));
}

TEST_F(ContextTest, DialogHelpers) {
  const std::uint64_t id = ctx().show_dialog("confirm");
  EXPECT_NE(bed_.server().windows().top_dialog(), nullptr);
  ctx().dismiss_dialog(id);
  EXPECT_EQ(bed_.server().windows().top_dialog(), nullptr);
}

TEST_F(ContextTest, ShmChannelVisible) {
  const std::uint64_t before = ctx().surface_flinger_shm_bytes();
  ctx().show_dialog("popup");
  EXPECT_NE(ctx().surface_flinger_shm_bytes(), before);
}

TEST_F(ContextTest, BrightnessHelpersRespectMode) {
  EXPECT_EQ(ctx().screen_mode(), BrightnessMode::kAuto);
  EXPECT_TRUE(ctx().set_brightness(200));  // stored only
  EXPECT_EQ(ctx().brightness(), 102);
  EXPECT_TRUE(ctx().set_screen_mode(BrightnessMode::kManual));
  EXPECT_EQ(ctx().brightness(), 200);
}

TEST_F(ContextTest, ServiceHelpersResolveOwnPackage) {
  DemoAppSpec spec = apps::victim_spec();
  spec.package = "com.ctx.svc";
  spec.wakelock_bug = false;
  bed_.install<DemoApp>(spec);
  auto& svc_ctx = bed_.context_of("com.ctx.svc");
  EXPECT_TRUE(svc_ctx.start_service(
      Intent::explicit_for("com.ctx.svc", DemoApp::kService)));
  EXPECT_TRUE(svc_ctx.is_service_running("com.ctx.svc", DemoApp::kService));
  EXPECT_TRUE(svc_ctx.stop_self(DemoApp::kService));
  EXPECT_FALSE(svc_ctx.is_service_running("com.ctx.svc", DemoApp::kService));
}

}  // namespace
}  // namespace eandroid::framework
