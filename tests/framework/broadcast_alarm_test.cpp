#include <gtest/gtest.h>

#include <memory>

#include "framework/alarm_manager.h"
#include "framework/broadcast_manager.h"
#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::EventLog;
using testing::RecordingApp;
using testing::simple_manifest;

/// App that records broadcasts/alarms and can auto-start a service.
class ReactiveApp : public AppCode {
 public:
  void on_broadcast(Context& ctx, const std::string& action) override {
    broadcasts.push_back(action);
    if (!start_on_broadcast.empty()) {
      ctx.start_service(Intent::explicit_for(ctx.package(),
                                             start_on_broadcast));
    }
  }
  void on_alarm(Context&, const std::string& tag) override {
    alarms.push_back(tag);
  }
  std::vector<std::string> broadcasts;
  std::vector<std::string> alarms;
  std::string start_on_broadcast;
};

class BroadcastAlarmTest : public ::testing::Test {
 protected:
  BroadcastAlarmTest() : server_(sim_) {
    Manifest listener = simple_manifest("com.listener");
    listener.receivers.push_back(
        ReceiverDecl{"Unlock", {kActionUserPresent}});
    listener.services.push_back(ServiceDecl{"Sync", /*exported=*/false, {}});
    auto code = std::make_unique<ReactiveApp>();
    listener_ = code.get();
    server_.install(std::move(listener), std::move(code));

    server_.install(simple_manifest("com.plain"),
                    std::make_unique<RecordingApp>());
    server_.boot();
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }
  Context& ctx(const std::string& package) {
    server_.ensure_process(uid(package));
    return server_.context_of(uid(package));
  }

  sim::Simulator sim_;
  SystemServer server_;
  ReactiveApp* listener_ = nullptr;
};

TEST_F(BroadcastAlarmTest, ManifestReceiverWokenBySystemBroadcast) {
  EXPECT_FALSE(server_.pid_of(uid("com.listener")).valid());
  server_.user_unlock();
  // The listener's process was spawned just to deliver the broadcast —
  // the stealth auto-launch channel.
  EXPECT_TRUE(server_.pid_of(uid("com.listener")).valid());
  ASSERT_EQ(listener_->broadcasts.size(), 1u);
  EXPECT_EQ(listener_->broadcasts[0], kActionUserPresent);
}

TEST_F(BroadcastAlarmTest, BootCompletedDeliveredAtBoot) {
  // A second server whose listener registers for BOOT_COMPLETED.
  sim::Simulator sim;
  SystemServer server(sim);
  Manifest m = simple_manifest("com.boot");
  m.receivers.push_back(ReceiverDecl{"Boot", {kActionBootCompleted}});
  auto code = std::make_unique<ReactiveApp>();
  ReactiveApp* app = code.get();
  server.install(std::move(m), std::move(code));
  server.boot();
  ASSERT_EQ(app->broadcasts.size(), 1u);
  EXPECT_EQ(app->broadcasts[0], kActionBootCompleted);
}

TEST_F(BroadcastAlarmTest, DynamicRegistrationAndUnregistration) {
  ctx("com.plain");
  server_.broadcasts().register_receiver(uid("com.listener"), "CUSTOM");
  EXPECT_EQ(ctx("com.plain").send_broadcast("CUSTOM"), 1);
  server_.broadcasts().unregister_receiver(uid("com.listener"), "CUSTOM");
  EXPECT_EQ(ctx("com.plain").send_broadcast("CUSTOM"), 0);
}

TEST_F(BroadcastAlarmTest, SenderDoesNotReceiveItsOwnBroadcast) {
  ctx("com.listener").register_receiver("PING");
  EXPECT_EQ(ctx("com.listener").send_broadcast("PING"), 0);
}

TEST_F(BroadcastAlarmTest, DeliveryPublishesEventWithUids) {
  EventLog log(server_.events());
  ctx("com.plain");
  server_.broadcasts().register_receiver(uid("com.listener"), "CUSTOM");
  ctx("com.plain").send_broadcast("CUSTOM");
  const FwEvent* event = log.last(FwEventType::kBroadcastDelivered);
  ASSERT_NE(event, nullptr);
  EXPECT_EQ(event->driving, uid("com.plain"));
  EXPECT_EQ(event->driven, uid("com.listener"));
  EXPECT_EQ(event->component, "CUSTOM");
}

TEST_F(BroadcastAlarmTest, ReceiverCanStartItsServiceFromOnReceive) {
  listener_->start_on_broadcast = "Sync";
  server_.user_unlock();
  EXPECT_TRUE(server_.services().running("com.listener", "Sync"));
}

TEST_F(BroadcastAlarmTest, DedupOneDeliveryPerApp) {
  // Static + dynamic registration for the same action: one onReceive.
  server_.ensure_process(uid("com.listener"));
  server_.broadcasts().register_receiver(uid("com.listener"),
                                         kActionUserPresent);
  server_.user_unlock();
  EXPECT_EQ(listener_->broadcasts.size(), 1u);
}

TEST_F(BroadcastAlarmTest, AlarmFiresAtScheduledTime) {
  ctx("com.listener").set_alarm(sim::seconds(10), "sync");
  sim_.run_for(sim::seconds(9));
  EXPECT_TRUE(listener_->alarms.empty());
  sim_.run_for(sim::seconds(2));
  ASSERT_EQ(listener_->alarms.size(), 1u);
  EXPECT_EQ(listener_->alarms[0], "sync");
  EXPECT_EQ(server_.alarms().pending_count(), 0u);
}

TEST_F(BroadcastAlarmTest, RepeatingAlarmRefires) {
  const AlarmId id = ctx("com.listener")
                         .set_alarm(sim::seconds(5), "tick", true,
                                    sim::seconds(5));
  sim_.run_for(sim::seconds(16));
  EXPECT_EQ(listener_->alarms.size(), 3u);
  EXPECT_TRUE(server_.alarms().cancel(id));
  sim_.run_for(sim::seconds(20));
  EXPECT_EQ(listener_->alarms.size(), 3u);
}

TEST_F(BroadcastAlarmTest, CancelledAlarmNeverFires) {
  const AlarmId id = ctx("com.listener").set_alarm(sim::seconds(5), "x");
  EXPECT_TRUE(ctx("com.listener").cancel_alarm(id));
  EXPECT_FALSE(ctx("com.listener").cancel_alarm(id));
  sim_.run_for(sim::seconds(10));
  EXPECT_TRUE(listener_->alarms.empty());
}

TEST_F(BroadcastAlarmTest, AlarmWakesSuspendedDevice) {
  ctx("com.listener").set_alarm(sim::minutes(5), "rtc");
  sim_.run_for(sim::minutes(2));
  ASSERT_TRUE(server_.power().suspended());  // screen timed out long ago
  sim_.run_for(sim::minutes(4));
  EXPECT_EQ(listener_->alarms.size(), 1u);  // fired despite suspend
}

TEST_F(BroadcastAlarmTest, CancelAllOfUid) {
  ctx("com.listener").set_alarm(sim::seconds(5), "a");
  ctx("com.listener").set_alarm(sim::seconds(6), "b");
  ctx("com.plain").set_alarm(sim::seconds(7), "c");
  EXPECT_EQ(server_.alarms().cancel_all_of(uid("com.listener")), 2);
  EXPECT_EQ(server_.alarms().pending_count(), 1u);
}

TEST_F(BroadcastAlarmTest, IncomingCallInterruptsAndReturns) {
  server_.user_launch("com.plain");
  server_.simulate_incoming_call(sim::seconds(10));
  EXPECT_EQ(server_.activities().foreground_uid(), server_.phone_uid());
  EXPECT_EQ(server_.activities().activity_state("com.plain", "Main"),
            ActivityRecord::State::kStopped);
  sim_.run_for(sim::seconds(11));
  // Call ended: the interrupted app resumes.
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.plain"));
}

}  // namespace
}  // namespace eandroid::framework
