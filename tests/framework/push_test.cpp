#include "framework/push_service.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/scenarios.h"
#include "apps/testbed.h"

namespace eandroid::framework {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;
using apps::Testbed;

DemoAppSpec endpoint_spec(const std::string& package) {
  DemoAppSpec spec = apps::message_spec();
  spec.package = package;
  spec.push_endpoint = true;
  return spec;
}

TEST(PushTest, PushToUnregisteredTargetFails) {
  Testbed bed;
  bed.install<DemoApp>(apps::message_spec());  // not an endpoint
  DemoAppSpec sender = apps::message_spec();
  sender.package = "com.sender";
  bed.install<DemoApp>(sender);
  bed.start();
  EXPECT_FALSE(
      bed.context_of("com.sender").send_push("com.example.message"));
  EXPECT_FALSE(bed.context_of("com.sender").send_push("com.missing"));
}

TEST(PushTest, PushWakesReceiverProcess) {
  Testbed bed;
  DemoApp* receiver = bed.install<DemoApp>(endpoint_spec("com.receiver"));
  DemoAppSpec sender = apps::message_spec();
  sender.package = "com.sender";
  bed.install<DemoApp>(sender);
  bed.start();
  // Register the endpoint (first run), then kill the process.
  bed.context_of("com.receiver");
  bed.server().kill_app(bed.uid_of("com.receiver"));
  ASSERT_FALSE(bed.server().pid_of(bed.uid_of("com.receiver")).valid());

  EXPECT_TRUE(bed.context_of("com.sender").send_push("com.receiver"));
  EXPECT_TRUE(bed.server().pid_of(bed.uid_of("com.receiver")).valid());
  EXPECT_EQ(receiver->pushes_received(), 1);
}

TEST(PushTest, RadioLightsUpForTransferThenTails) {
  Testbed bed;
  bed.install<DemoApp>(endpoint_spec("com.receiver"));
  DemoAppSpec sender = apps::message_spec();
  sender.package = "com.sender";
  bed.install<DemoApp>(sender);
  bed.start();
  bed.context_of("com.receiver");
  bed.context_of("com.sender").send_push("com.receiver");
  EXPECT_TRUE(bed.server().wifi().active());
  bed.sim().run_for(sim::seconds(2));
  EXPECT_FALSE(bed.server().wifi().active());
}

TEST(PushTest, DeliveryPublishesEventAndOpensWindow) {
  Testbed bed;
  bed.install<DemoApp>(endpoint_spec("com.receiver"));
  DemoAppSpec sender = apps::message_spec();
  sender.package = "com.sender";
  bed.install<DemoApp>(sender);
  bed.start();
  bed.context_of("com.receiver");
  bed.context_of("com.sender").send_push("com.receiver");
  EXPECT_TRUE(bed.eandroid()->tracker().has_window(
      core::WindowKind::kPush, bed.uid_of("com.sender"),
      bed.uid_of("com.receiver")));
  // The window is bounded: it closes after the handling period.
  bed.sim().run_for(PushService::kHandlingWindow + sim::millis(1));
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
}

TEST(PushTest, UnregisterStopsDelivery) {
  Testbed bed;
  bed.install<DemoApp>(endpoint_spec("com.receiver"));
  DemoAppSpec sender = apps::message_spec();
  sender.package = "com.sender";
  bed.install<DemoApp>(sender);
  bed.start();
  bed.context_of("com.receiver");
  bed.server().push().unregister_endpoint(bed.uid_of("com.receiver"));
  EXPECT_FALSE(bed.context_of("com.sender").send_push("com.receiver"));
}

TEST(PushTest, FloodScenarioChargesFlooderUnderEAndroid) {
  const apps::ScenarioResult r = apps::run_push_flood();
  const core::EARow* flooder =
      r.ea_view.row_of(apps::PushFlooderMalware::kPackage);
  ASSERT_NE(flooder, nullptr);
  EXPECT_GT(flooder->collateral_mj, 0.0);
  // Stock Android bills the victim for its own wake-ups.
  EXPECT_GT(r.android_view.energy_of("com.example.syncclient"), 0.0);
  EXPECT_GT(flooder->collateral_mj,
            0.5 * r.android_view.energy_of("com.example.syncclient"));
}

TEST(PushTest, FloodDrainsMoreThanIdle) {
  // The Martin et al. claim: repeated requests measurably drain the
  // victim compared with an idle baseline.
  auto drained = [](bool flood) {
    Testbed bed;
    bed.install<DemoApp>(endpoint_spec("com.example.syncclient"));
    auto* flooder = bed.install<apps::PushFlooderMalware>(
        "com.example.syncclient", sim::millis(500));
    bed.start();
    bed.context_of("com.example.syncclient");
    (void)bed.context_of(apps::PushFlooderMalware::kPackage);
    if (flood) flooder->attack();
    bed.run_for(sim::minutes(2));
    return bed.server().battery().drained_mj();
  };
  EXPECT_GT(drained(true), 1.3 * drained(false));
}

}  // namespace
}  // namespace eandroid::framework
