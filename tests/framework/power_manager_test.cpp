#include "framework/power_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::EventLog;
using testing::RecordingApp;

class PowerManagerTest : public ::testing::Test {
 protected:
  PowerManagerTest() : server_(sim_) {
    Manifest locker = testing::simple_manifest("com.locker");
    locker.permissions.push_back(Permission::kWakeLock);
    server_.install(std::move(locker), std::make_unique<RecordingApp>());
    server_.install(testing::simple_manifest("com.plain"),
                    std::make_unique<RecordingApp>());
    server_.boot();
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }
  Context& ctx(const std::string& package) {
    server_.ensure_process(uid(package));
    return server_.context_of(uid(package));
  }

  sim::Simulator sim_;
  SystemServer server_;
};

TEST_F(PowerManagerTest, AcquireRequiresPermission) {
  EXPECT_TRUE(ctx("com.locker")
                  .acquire_wakelock(WakelockType::kPartial, "t")
                  .has_value());
  EXPECT_FALSE(ctx("com.plain")
                   .acquire_wakelock(WakelockType::kPartial, "t")
                   .has_value());
}

TEST_F(PowerManagerTest, ScreenTimesOutWithoutWakelock) {
  EXPECT_TRUE(server_.power().screen_on());
  sim_.run_for(server_.params().screen_timeout + sim::seconds(1));
  EXPECT_FALSE(server_.power().screen_on());
  // No wakelock at all: the device suspends.
  EXPECT_TRUE(server_.power().suspended());
}

TEST_F(PowerManagerTest, UserActivityRewindsTimeout) {
  sim_.run_for(sim::seconds(20));
  server_.power().user_activity();
  sim_.run_for(sim::seconds(20));
  EXPECT_TRUE(server_.power().screen_on());
  sim_.run_for(sim::seconds(11));
  EXPECT_FALSE(server_.power().screen_on());
}

TEST_F(PowerManagerTest, ScreenWakelockKeepsScreenOn) {
  const auto lock =
      ctx("com.locker").acquire_wakelock(WakelockType::kScreenBright, "t");
  ASSERT_TRUE(lock.has_value());
  sim_.run_for(sim::minutes(5));
  EXPECT_TRUE(server_.power().screen_on());
  EXPECT_TRUE(server_.power().screen_forced_by_wakelock());
  EXPECT_FALSE(server_.power().suspended());
}

TEST_F(PowerManagerTest, PartialWakelockKeepsCpuButNotScreen) {
  const auto lock =
      ctx("com.locker").acquire_wakelock(WakelockType::kPartial, "t");
  ASSERT_TRUE(lock.has_value());
  sim_.run_for(sim::minutes(5));
  EXPECT_FALSE(server_.power().screen_on());
  EXPECT_FALSE(server_.power().suspended());
}

TEST_F(PowerManagerTest, ScreenNotForcedWhileUserActive) {
  ctx("com.locker").acquire_wakelock(WakelockType::kFull, "t");
  server_.power().user_activity();
  EXPECT_TRUE(server_.power().screen_on());
  EXPECT_FALSE(server_.power().screen_forced_by_wakelock());
}

TEST_F(PowerManagerTest, ReleaseTurnsScreenOffAfterTimeout) {
  const auto lock =
      ctx("com.locker").acquire_wakelock(WakelockType::kScreenBright, "t");
  sim_.run_for(sim::minutes(2));
  EXPECT_TRUE(server_.power().screen_on());
  EXPECT_TRUE(ctx("com.locker").release_wakelock(*lock));
  server_.power();  // releasing past the timeout drops the screen now
  EXPECT_FALSE(server_.power().screen_on());
  EXPECT_TRUE(server_.power().suspended());
}

TEST_F(PowerManagerTest, OnlyOwnerCanRelease) {
  const auto lock =
      ctx("com.locker").acquire_wakelock(WakelockType::kPartial, "t");
  EXPECT_FALSE(server_.power().release(uid("com.plain"), *lock));
  EXPECT_TRUE(server_.power().release(uid("com.locker"), *lock));
  EXPECT_FALSE(server_.power().release(uid("com.locker"), *lock));  // twice
}

TEST_F(PowerManagerTest, LinkToDeathReleasesOnProcessKill) {
  ctx("com.locker").acquire_wakelock(WakelockType::kScreenBright, "t");
  EXPECT_EQ(server_.power().held_count(), 1u);
  EventLog log(server_.events());
  server_.kill_app(uid("com.locker"));
  EXPECT_EQ(server_.power().held_count(), 0u);
  EXPECT_EQ(log.count(FwEventType::kWakelockRelease), 1);
  sim_.run_for(sim::minutes(1));
  EXPECT_FALSE(server_.power().screen_on());
}

TEST_F(PowerManagerTest, HeldByAndOwnersQueries) {
  ctx("com.locker").acquire_wakelock(WakelockType::kPartial, "a");
  ctx("com.locker").acquire_wakelock(WakelockType::kFull, "b");
  EXPECT_EQ(server_.power().held_by(uid("com.locker")).size(), 2u);
  const auto owners = server_.power().screen_wakelock_owners();
  ASSERT_EQ(owners.size(), 1u);  // only the FULL lock keeps the screen
  EXPECT_EQ(owners[0], uid("com.locker"));
}

TEST_F(PowerManagerTest, EventsCarryScreenFlag) {
  EventLog log(server_.events());
  const auto lock =
      ctx("com.locker").acquire_wakelock(WakelockType::kScreenDim, "t");
  const FwEvent* acquire = log.last(FwEventType::kWakelockAcquire);
  ASSERT_NE(acquire, nullptr);
  EXPECT_TRUE(acquire->screen_wakelock);
  EXPECT_EQ(acquire->driving, uid("com.locker"));
  ctx("com.locker").release_wakelock(*lock);
  const FwEvent* release = log.last(FwEventType::kWakelockRelease);
  ASSERT_NE(release, nullptr);
  EXPECT_EQ(release->handle, acquire->handle);
}

TEST_F(PowerManagerTest, ScreenOffEventPublished) {
  EventLog log(server_.events());
  sim_.run_for(sim::minutes(1));
  EXPECT_EQ(log.count(FwEventType::kScreenOff), 1);
  server_.power().user_activity();
  EXPECT_EQ(log.count(FwEventType::kScreenOn), 1);
}

TEST_F(PowerManagerTest, SuspendFreezesCpuLoads) {
  ctx("com.plain").set_cpu_load("x", 0.5);
  sim_.run_for(sim::minutes(1));
  EXPECT_TRUE(server_.power().suspended());
  EXPECT_DOUBLE_EQ(server_.cpu().instantaneous_utilization(), 0.0);
}

TEST_F(PowerManagerTest, TimedWakelockAutoReleases) {
  // The acquire(long) overload: the defensive idiom against no-sleep bugs.
  const auto lock = ctx("com.locker")
                        .acquire_wakelock(WakelockType::kScreenBright, "t",
                                          sim::seconds(10));
  ASSERT_TRUE(lock.has_value());
  sim_.run_for(sim::seconds(9));
  EXPECT_EQ(server_.power().held_count(), 1u);
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(server_.power().held_count(), 0u);
  // Past the user-activity window, the screen drops with the lock.
  sim_.run_for(sim::minutes(1));
  EXPECT_FALSE(server_.power().screen_on());
}

TEST_F(PowerManagerTest, TimedWakelockExplicitReleaseFirstIsClean) {
  const auto lock = ctx("com.locker")
                        .acquire_wakelock(WakelockType::kPartial, "t",
                                          sim::seconds(10));
  EXPECT_TRUE(ctx("com.locker").release_wakelock(*lock));
  sim_.run_for(sim::seconds(20));  // the timer fires on a gone lock: no-op
  EXPECT_EQ(server_.power().held_count(), 0u);
}

TEST_F(PowerManagerTest, KeepsScreenOnHelper) {
  EXPECT_TRUE(keeps_screen_on(WakelockType::kScreenDim));
  EXPECT_TRUE(keeps_screen_on(WakelockType::kScreenBright));
  EXPECT_TRUE(keeps_screen_on(WakelockType::kFull));
  EXPECT_FALSE(keeps_screen_on(WakelockType::kPartial));
}

}  // namespace
}  // namespace eandroid::framework
