#include "framework/lmk.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace eandroid::framework {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;
using apps::Testbed;

DemoAppSpec plain(const std::string& package) {
  DemoAppSpec spec = apps::message_spec();
  spec.package = package;
  return spec;
}

class LmkTest : public ::testing::Test {
 protected:
  LmkTest() {
    bed_.install<DemoApp>(plain("com.app.a"));
    bed_.install<DemoApp>(plain("com.app.b"));
    bed_.install<DemoApp>(plain("com.app.c"));
    bed_.start();
  }
  Testbed bed_;
};

TEST_F(LmkTest, DisabledByDefault) {
  EXPECT_EQ(bed_.server().lmk().budget_mb(), 0);
  bed_.server().user_launch("com.app.a");
  bed_.server().user_launch("com.app.b");
  bed_.server().user_launch("com.app.c");
  EXPECT_EQ(bed_.server().lmk().maybe_reclaim(), 0);
  EXPECT_EQ(bed_.server().lmk().kills(), 0u);
}

TEST_F(LmkTest, PriorityClasses) {
  auto& lmk = bed_.server().lmk();
  EXPECT_EQ(lmk.priority_of(bed_.uid_of("com.app.a")), 5);  // not running
  bed_.server().user_launch("com.app.a");
  EXPECT_EQ(lmk.priority_of(bed_.uid_of("com.app.a")), 0);  // foreground
  bed_.server().user_launch("com.app.b");
  EXPECT_EQ(lmk.priority_of(bed_.uid_of("com.app.a")), 3);  // cached
  // A process with no components at all is "empty".
  bed_.context_of("com.app.c");
  EXPECT_EQ(lmk.priority_of(bed_.uid_of("com.app.c")), 4);
}

TEST_F(LmkTest, ServiceAndWakelockProtectFromCachedClass) {
  Testbed bed;
  DemoAppSpec svc = apps::victim_spec();
  svc.wakelock_bug = false;
  svc.exit_dialog = false;
  bed.install<DemoApp>(svc);
  DemoAppSpec locker = plain("com.locker");
  locker.permissions = {Permission::kWakeLock};
  bed.install<DemoApp>(locker);
  bed.start();
  bed.context_of(svc.package)
      .start_service(Intent::explicit_for(svc.package, DemoApp::kService));
  EXPECT_EQ(bed.server().lmk().priority_of(bed.uid_of(svc.package)), 2);
  bed.context_of("com.locker")
      .acquire_wakelock(WakelockType::kPartial, "keep");
  EXPECT_EQ(bed.server().lmk().priority_of(bed.uid_of("com.locker")), 2);
}

TEST_F(LmkTest, ReclaimsLruCachedProcessFirst) {
  bed_.server().lmk().set_budget_mb(250);  // launcher+systemui+2 apps fit
  bed_.server().user_launch("com.app.a");  // oldest foreground
  bed_.sim().run_for(sim::seconds(1));
  bed_.server().user_launch("com.app.b");
  bed_.sim().run_for(sim::seconds(1));
  // Launching C pushes memory over budget; A is the LRU cached app.
  bed_.server().user_launch("com.app.c");
  EXPECT_GE(bed_.server().lmk().kills(), 1u);
  EXPECT_FALSE(bed_.server().pid_of(bed_.uid_of("com.app.a")).valid());
  EXPECT_TRUE(bed_.server().pid_of(bed_.uid_of("com.app.b")).valid());
  EXPECT_TRUE(bed_.server().pid_of(bed_.uid_of("com.app.c")).valid());
}

TEST_F(LmkTest, ForegroundNeverKilled) {
  bed_.server().lmk().set_budget_mb(1);  // impossible budget
  bed_.server().user_launch("com.app.a");
  bed_.server().lmk().maybe_reclaim();
  EXPECT_TRUE(bed_.server().pid_of(bed_.uid_of("com.app.a")).valid());
}

TEST_F(LmkTest, ReclaimReleasesLeakedWakelock) {
  // A cached app with the no-sleep bug dies under memory pressure and its
  // wakelock is freed by link-to-death — memory pressure as an accidental
  // mitigation of attack #4's persistence.
  Testbed bed;
  bed.install<DemoApp>(apps::victim_spec());
  bed.install<DemoApp>(plain("com.filler1"));
  bed.install<DemoApp>(plain("com.filler2"));
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.server().user_press_home();  // wakelock leaked, app cached
  ASSERT_EQ(bed.server().power().held_count(), 1u);
  // The victim holds a wakelock -> adj 2; it survives light pressure...
  bed.server().lmk().set_budget_mb(250);
  bed.server().user_launch("com.filler1");
  EXPECT_EQ(bed.server().power().held_count(), 1u);
  // ...but with the budget squeezed below the protected set, adj-2
  // processes are still above the kill threshold and survive; only the
  // cached filler dies.
  bed.server().user_launch("com.filler2");
  EXPECT_TRUE(bed.server().pid_of(bed.uid_of("com.example.victim")).valid());
}

TEST_F(LmkTest, TotalRssTracksLiveProcesses) {
  const int base = bed_.server().lmk().total_rss_mb();  // launcher+systemui
  bed_.server().user_launch("com.app.a");
  EXPECT_EQ(bed_.server().lmk().total_rss_mb(), base + 80);
  bed_.server().kill_app(bed_.uid_of("com.app.a"));
  EXPECT_EQ(bed_.server().lmk().total_rss_mb(), base);
}

TEST_F(LmkTest, CustomMemorySizesRespected) {
  Testbed bed;
  DemoAppSpec fat = plain("com.fat");
  bed.install<DemoApp>(fat);
  // Tweak the manifest memory through install: DemoApp manifests default
  // to 80 MB; verify the accounting uses the manifest value.
  const PackageRecord* pkg = bed.server().packages().find("com.fat");
  ASSERT_NE(pkg, nullptr);
  EXPECT_EQ(pkg->manifest->memory_mb, 80);
}

}  // namespace
}  // namespace eandroid::framework
