// Touch dispatch priority: transparent overlay > topmost dialog >
// foreground activity — the ordering attack #4's click hijack exploits.
#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

class TouchApp : public AppCode {
 public:
  void on_touch(Context&, int x, int y) override {
    touches.push_back({x, y});
  }
  void on_dialog_result(Context&, const std::string&, bool ok) override {
    dialog_results.push_back(ok);
  }
  std::vector<std::pair<int, int>> touches;
  std::vector<bool> dialog_results;
};

class TouchRoutingTest : public ::testing::Test {
 protected:
  TouchRoutingTest() : server_(sim_) {
    auto fg = std::make_unique<TouchApp>();
    fg_ = fg.get();
    server_.install(testing::simple_manifest("com.fg"), std::move(fg));

    auto overlay = std::make_unique<TouchApp>();
    overlay_ = overlay.get();
    Manifest m = testing::simple_manifest("com.overlay");
    m.activities.push_back(
        ActivityDecl{"Glass", /*exported=*/true, {}, /*transparent=*/true});
    server_.install(std::move(m), std::move(overlay));
    server_.boot();
    server_.user_launch("com.fg");
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }

  sim::Simulator sim_;
  SystemServer server_;
  TouchApp* fg_ = nullptr;
  TouchApp* overlay_ = nullptr;
};

TEST_F(TouchRoutingTest, ForegroundActivityGetsTouches) {
  server_.user_tap(100, 200);
  ASSERT_EQ(fg_->touches.size(), 1u);
  EXPECT_EQ(fg_->touches[0], std::make_pair(100, 200));
}

TEST_F(TouchRoutingTest, DialogOutranksForeground) {
  server_.ensure_process(uid("com.fg"));
  server_.windows().show_dialog(uid("com.fg"), "confirm", 540, 960);
  server_.user_tap(540, 960);
  EXPECT_TRUE(fg_->touches.empty());
  ASSERT_EQ(fg_->dialog_results.size(), 1u);
  EXPECT_TRUE(fg_->dialog_results[0]);
}

TEST_F(TouchRoutingTest, TransparentOverlayOutranksDialog) {
  // The attack #4 geometry: dialog showing, overlay posted on top; the
  // tap that "hits OK" lands in the overlay owner's hands.
  server_.ensure_process(uid("com.fg"));
  server_.windows().show_dialog(uid("com.fg"), "confirm", 540, 960);
  server_.ensure_process(uid("com.overlay"));
  server_.context_of(uid("com.overlay"))
      .start_activity(Intent::explicit_for("com.overlay", "Glass"));
  server_.user_tap(540, 960);
  EXPECT_TRUE(fg_->dialog_results.empty());
  ASSERT_EQ(overlay_->touches.size(), 1u);
  // The dialog is still up (never answered).
  EXPECT_NE(server_.windows().top_dialog(), nullptr);
}

TEST_F(TouchRoutingTest, TapAlwaysCountsAsUserActivity) {
  sim_.run_for(sim::seconds(25));
  server_.user_tap(1, 1);
  sim_.run_for(sim::seconds(25));
  EXPECT_TRUE(server_.power().screen_on());  // timer was rewound
}

TEST_F(TouchRoutingTest, TouchesToDeadForegroundAreDropped) {
  server_.kill_app(uid("com.fg"));
  server_.user_tap(10, 10);  // launcher has a Noop code object: no crash
  EXPECT_TRUE(fg_->touches.empty());
}

}  // namespace
}  // namespace eandroid::framework
