#include "framework/package_manager.h"

#include <gtest/gtest.h>

#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::simple_manifest;

TEST(PackageManagerTest, InstallAssignsFreshAppUids) {
  PackageManager pm;
  const kernelsim::Uid a = pm.install(simple_manifest("a"), nullptr);
  const kernelsim::Uid b = pm.install(simple_manifest("b"), nullptr);
  EXPECT_GE(a.value, kernelsim::kFirstAppUid);
  EXPECT_NE(a, b);
}

TEST(PackageManagerTest, FindByNameAndUid) {
  PackageManager pm;
  const kernelsim::Uid uid = pm.install(simple_manifest("com.x"), nullptr);
  ASSERT_NE(pm.find("com.x"), nullptr);
  ASSERT_NE(pm.find(uid), nullptr);
  EXPECT_EQ(pm.find(uid)->manifest->package, "com.x");
  EXPECT_EQ(pm.find("missing"), nullptr);
  EXPECT_EQ(pm.find(kernelsim::Uid{999}), nullptr);
}

TEST(PackageManagerTest, SystemAppFlag) {
  PackageManager pm;
  const kernelsim::Uid sys =
      pm.install(simple_manifest("com.android.launcher"), nullptr, true);
  const kernelsim::Uid app = pm.install(simple_manifest("com.app"), nullptr);
  EXPECT_TRUE(pm.is_system_app(sys));
  EXPECT_FALSE(pm.is_system_app(app));
  EXPECT_FALSE(pm.is_system_app(kernelsim::Uid{12345}));
}

TEST(PackageManagerTest, PermissionCheck) {
  PackageManager pm;
  Manifest m = simple_manifest("com.x");
  m.permissions.push_back(Permission::kWakeLock);
  const kernelsim::Uid uid = pm.install(std::move(m), nullptr);
  EXPECT_TRUE(pm.has_permission(uid, Permission::kWakeLock));
  EXPECT_FALSE(pm.has_permission(uid, Permission::kWriteSettings));
}

TEST(PackageManagerTest, ExplicitResolutionHonoursExported) {
  PackageManager pm;
  const kernelsim::Uid owner =
      pm.install(simple_manifest("com.private", /*exported=*/false), nullptr);
  const kernelsim::Uid other = pm.install(simple_manifest("com.other"), nullptr);

  const Intent intent = Intent::explicit_for("com.private", "Main");
  EXPECT_TRUE(pm.resolve_activity(owner, intent).has_value());   // own app
  EXPECT_FALSE(pm.resolve_activity(other, intent).has_value());  // foreign
}

TEST(PackageManagerTest, ExplicitResolutionFailsForUnknownTargets) {
  PackageManager pm;
  const kernelsim::Uid uid = pm.install(simple_manifest("com.x"), nullptr);
  EXPECT_FALSE(
      pm.resolve_activity(uid, Intent::explicit_for("com.nope", "Main")));
  EXPECT_FALSE(
      pm.resolve_activity(uid, Intent::explicit_for("com.x", "Nope")));
  EXPECT_FALSE(pm.resolve_activity(uid, Intent::implicit("action")));
}

TEST(PackageManagerTest, ImplicitQueryFindsExportedMatchesSorted) {
  PackageManager pm;
  Manifest b = simple_manifest("com.b");
  b.activities[0].intent_actions = {"CAPTURE"};
  Manifest a = simple_manifest("com.a");
  a.activities[0].intent_actions = {"CAPTURE"};
  Manifest hidden = simple_manifest("com.hidden", /*exported=*/false);
  hidden.activities[0].intent_actions = {"CAPTURE"};
  pm.install(std::move(b), nullptr);
  pm.install(std::move(a), nullptr);
  pm.install(std::move(hidden), nullptr);

  const auto matches = pm.query_implicit_activities("CAPTURE");
  ASSERT_EQ(matches.size(), 2u);
  EXPECT_EQ(matches[0].package, "com.a");
  EXPECT_EQ(matches[1].package, "com.b");
}

TEST(PackageManagerTest, ServiceResolution) {
  PackageManager pm;
  Manifest m = simple_manifest("com.svc");
  m.services.push_back(ServiceDecl{"Work", /*exported=*/true, {}});
  m.services.push_back(ServiceDecl{"Hidden", /*exported=*/false, {}});
  const kernelsim::Uid owner = pm.install(std::move(m), nullptr);
  const kernelsim::Uid other = pm.install(simple_manifest("com.o"), nullptr);

  EXPECT_TRUE(pm.resolve_service(other, Intent::explicit_for("com.svc", "Work")));
  EXPECT_FALSE(
      pm.resolve_service(other, Intent::explicit_for("com.svc", "Hidden")));
  EXPECT_TRUE(
      pm.resolve_service(owner, Intent::explicit_for("com.svc", "Hidden")));
}

TEST(PackageManagerTest, AllPackagesSortedByName) {
  PackageManager pm;
  pm.install(simple_manifest("zeta"), nullptr);
  pm.install(simple_manifest("alpha"), nullptr);
  const auto all = pm.all_packages();
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0]->manifest->package, "alpha");
  EXPECT_EQ(all[1]->manifest->package, "zeta");
}

TEST(ManifestTest, HasExportedComponentChecksServicesToo) {
  Manifest m;
  m.package = "x";
  m.activities.push_back(ActivityDecl{"Main", false, {}});
  EXPECT_FALSE(m.has_exported_component());
  m.services.push_back(ServiceDecl{"S", true, {}});
  EXPECT_TRUE(m.has_exported_component());
}

TEST(ManifestTest, RootActivityIsFirstDeclared) {
  Manifest m;
  EXPECT_EQ(m.root_activity(), nullptr);
  m.activities.push_back(ActivityDecl{"First", true, {}});
  m.activities.push_back(ActivityDecl{"Second", true, {}});
  EXPECT_EQ(m.root_activity()->name, "First");
}

}  // namespace
}  // namespace eandroid::framework
