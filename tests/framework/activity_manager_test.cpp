#include "framework/activity_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::EventLog;
using testing::RecordingApp;
using State = ActivityRecord::State;

class ActivityManagerTest : public ::testing::Test {
 protected:
  ActivityManagerTest() : server_(sim_) {}

  RecordingApp* install(const std::string& package, bool exported = true) {
    auto app = std::make_unique<RecordingApp>();
    RecordingApp* borrowed = app.get();
    server_.install(testing::simple_manifest(package, exported),
                    std::move(app));
    return borrowed;
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }

  sim::Simulator sim_;
  SystemServer server_;
};

TEST_F(ActivityManagerTest, BootPutsLauncherInForeground) {
  server_.boot();
  EXPECT_EQ(server_.activities().foreground_uid(), server_.launcher_uid());
  EXPECT_EQ(server_.activities().task_count(), 1u);
}

TEST_F(ActivityManagerTest, UserLaunchBringsAppToForeground) {
  RecordingApp* app = install("com.a");
  server_.boot();
  EXPECT_TRUE(server_.user_launch("com.a"));
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.a"));
  EXPECT_TRUE(app->saw("create:Main"));
  EXPECT_TRUE(app->saw("resume:Main"));
  EXPECT_EQ(server_.activities().activity_state("com.a", "Main"),
            State::kResumed);
}

TEST_F(ActivityManagerTest, LaunchUnknownPackageFails) {
  server_.boot();
  EXPECT_FALSE(server_.user_launch("com.missing"));
}

TEST_F(ActivityManagerTest, HomeStopsForegroundApp) {
  RecordingApp* app = install("com.a");
  server_.boot();
  server_.user_launch("com.a");
  server_.user_press_home();
  EXPECT_EQ(server_.activities().foreground_uid(), server_.launcher_uid());
  EXPECT_TRUE(app->saw("pause:Main"));
  EXPECT_TRUE(app->saw("stop:Main"));
  EXPECT_EQ(server_.activities().activity_state("com.a", "Main"),
            State::kStopped);
}

TEST_F(ActivityManagerTest, RelaunchResumesExistingTask) {
  RecordingApp* app = install("com.a");
  server_.boot();
  server_.user_launch("com.a");
  server_.user_press_home();
  server_.user_launch("com.a");
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.a"));
  // Not recreated: one create, two resumes.
  EXPECT_EQ(app->count("create:Main"), 1);
  EXPECT_EQ(app->count("resume:Main"), 2);
}

TEST_F(ActivityManagerTest, CrossAppStartPushesOntoCurrentTask) {
  install("com.a");
  RecordingApp* b = install("com.b");
  server_.boot();
  server_.user_launch("com.a");
  const std::size_t tasks_before = server_.activities().task_count();
  EXPECT_TRUE(server_.context_of(uid("com.a"))
                  .start_activity(Intent::explicit_for("com.b", "Main")));
  EXPECT_EQ(server_.activities().task_count(), tasks_before);
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.b"));
  EXPECT_TRUE(b->saw("resume:Main"));
  EXPECT_EQ(server_.activities().activity_state("com.a", "Main"),
            State::kStopped);
}

TEST_F(ActivityManagerTest, NewTaskFlagCreatesSeparateTask) {
  install("com.a");
  install("com.b");
  server_.boot();
  server_.user_launch("com.a");
  const std::size_t tasks_before = server_.activities().task_count();
  Intent intent = Intent::explicit_for("com.b", "Main");
  intent.new_task = true;
  server_.context_of(uid("com.a")).start_activity(intent);
  EXPECT_EQ(server_.activities().task_count(), tasks_before + 1);
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.b"));
}

TEST_F(ActivityManagerTest, StartNonExportedForeignActivityFails) {
  install("com.a");
  install("com.b", /*exported=*/false);
  server_.boot();
  server_.user_launch("com.a");
  EXPECT_FALSE(server_.context_of(uid("com.a"))
                   .start_activity(Intent::explicit_for("com.b", "Main")));
}

TEST_F(ActivityManagerTest, ImplicitIntentUsesChooser) {
  auto manifest = testing::simple_manifest("com.cam");
  manifest.activities[0].intent_actions = {"CAPTURE"};
  server_.install(std::move(manifest), std::make_unique<RecordingApp>());
  install("com.a");
  server_.boot();
  server_.user_launch("com.a");
  EXPECT_TRUE(server_.context_of(uid("com.a"))
                  .start_activity(Intent::implicit("CAPTURE")));
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.cam"));
}

TEST_F(ActivityManagerTest, ImplicitIntentWithNoMatchFails) {
  install("com.a");
  server_.boot();
  server_.user_launch("com.a");
  EXPECT_FALSE(server_.context_of(uid("com.a"))
                   .start_activity(Intent::implicit("NO_SUCH_ACTION")));
}

TEST_F(ActivityManagerTest, ResolverChooserCanPickAndCancel) {
  auto m1 = testing::simple_manifest("com.cam1");
  m1.activities[0].intent_actions = {"CAPTURE"};
  auto m2 = testing::simple_manifest("com.cam2");
  m2.activities[0].intent_actions = {"CAPTURE"};
  server_.install(std::move(m1), std::make_unique<RecordingApp>());
  server_.install(std::move(m2), std::make_unique<RecordingApp>());
  install("com.a");
  server_.boot();
  server_.user_launch("com.a");

  server_.activities().set_resolver_chooser(
      [](const std::vector<ComponentRef>& matches)
          -> std::optional<ComponentRef> { return matches.back(); });
  EXPECT_TRUE(server_.context_of(uid("com.a"))
                  .start_activity(Intent::implicit("CAPTURE")));
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.cam2"));

  server_.activities().set_resolver_chooser(
      [](const std::vector<ComponentRef>&) -> std::optional<ComponentRef> {
        return std::nullopt;  // user backed out of the resolver
      });
  EXPECT_FALSE(server_.context_of(uid("com.a"))
                   .start_activity(Intent::implicit("CAPTURE")));
}

TEST_F(ActivityManagerTest, FinishRevealsActivityBelow) {
  RecordingApp* a = install("com.a");
  install("com.b");
  server_.boot();
  server_.user_launch("com.a");
  server_.context_of(uid("com.a"))
      .start_activity(Intent::explicit_for("com.b", "Main"));
  EXPECT_TRUE(server_.context_of(uid("com.b")).finish_activity("Main"));
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.a"));
  EXPECT_EQ(a->count("resume:Main"), 2);
}

TEST_F(ActivityManagerTest, BackFinishesTopActivity) {
  RecordingApp* a = install("com.a");
  server_.boot();
  server_.user_launch("com.a");
  server_.user_press_back();
  EXPECT_TRUE(a->saw("destroy:Main"));
  EXPECT_EQ(server_.activities().foreground_uid(), server_.launcher_uid());
  EXPECT_EQ(server_.activities().activity_state("com.a", "Main"),
            State::kDestroyed);
}

TEST_F(ActivityManagerTest, TransparentActivityOnlyPausesBelow) {
  auto manifest = testing::simple_manifest("com.overlay");
  manifest.activities.push_back(
      ActivityDecl{"Glass", /*exported=*/true, {}, /*transparent=*/true});
  server_.install(std::move(manifest), std::make_unique<RecordingApp>());
  RecordingApp* victim = install("com.victim");
  server_.boot();
  server_.user_launch("com.victim");
  server_.context_of(uid("com.overlay"))
      .start_activity(Intent::explicit_for("com.overlay", "Glass"));
  EXPECT_EQ(server_.activities().activity_state("com.victim", "Main"),
            State::kPaused);
  EXPECT_TRUE(victim->saw("pause:Main"));
  EXPECT_FALSE(victim->saw("stop:Main"));
}

TEST_F(ActivityManagerTest, StartHomeAttributedToCaller) {
  install("com.a");
  install("com.mal");
  server_.boot();
  server_.user_launch("com.a");
  EventLog log(server_.events());
  EXPECT_TRUE(server_.context_of(uid("com.mal")).start_home());
  const FwEvent* interrupt = log.last(FwEventType::kActivityInterrupt);
  ASSERT_NE(interrupt, nullptr);
  EXPECT_EQ(interrupt->driving, uid("com.mal"));
  EXPECT_EQ(interrupt->driven, uid("com.a"));
  EXPECT_FALSE(interrupt->by_user);
}

TEST_F(ActivityManagerTest, UserHomeInterruptIsFlaggedByUser) {
  install("com.a");
  server_.boot();
  server_.user_launch("com.a");
  EventLog log(server_.events());
  server_.user_press_home();
  const FwEvent* interrupt = log.last(FwEventType::kActivityInterrupt);
  ASSERT_NE(interrupt, nullptr);
  EXPECT_TRUE(interrupt->by_user);
}

TEST_F(ActivityManagerTest, MoveTaskToFrontNeedsPermission) {
  install("com.a");
  auto manifest = testing::simple_manifest("com.priv");
  manifest.permissions.push_back(Permission::kReorderTasks);
  server_.install(std::move(manifest), std::make_unique<RecordingApp>());
  server_.boot();
  server_.user_launch("com.a");
  server_.user_press_home();

  EXPECT_FALSE(
      server_.context_of(uid("com.a")).move_task_to_front("com.a"));
  EXPECT_TRUE(
      server_.context_of(uid("com.priv")).move_task_to_front("com.a"));
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.a"));
}

TEST_F(ActivityManagerTest, CrossAppStartPublishesStartAndInterrupt) {
  install("com.a");
  install("com.b");
  server_.boot();
  server_.user_launch("com.a");
  EventLog log(server_.events());
  server_.context_of(uid("com.a"))
      .start_activity(Intent::explicit_for("com.b", "Main"));
  const FwEvent* start = log.last(FwEventType::kActivityStart);
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->driving, uid("com.a"));
  EXPECT_EQ(start->driven, uid("com.b"));
  // The interruption of A is attributed to the operation's initiator (A
  // itself here), so no cross-app interrupt event is published.
  EXPECT_EQ(log.count(FwEventType::kActivityInterrupt), 0);
}

TEST_F(ActivityManagerTest, ForegroundChangePublishedOnSwitch) {
  install("com.a");
  server_.boot();
  EventLog log(server_.events());
  server_.user_launch("com.a");
  const FwEvent* change = log.last(FwEventType::kForegroundChange);
  ASSERT_NE(change, nullptr);
  EXPECT_EQ(change->driven, uid("com.a"));
  EXPECT_EQ(change->driving, server_.launcher_uid());
  EXPECT_TRUE(change->by_user);
}

TEST_F(ActivityManagerTest, ProcessDeathDestroysActivities) {
  install("com.a");
  server_.boot();
  server_.user_launch("com.a");
  EventLog log(server_.events());
  server_.kill_app(uid("com.a"));
  EXPECT_EQ(server_.activities().foreground_uid(), server_.launcher_uid());
  EXPECT_EQ(server_.activities().activity_state("com.a", "Main"),
            State::kDestroyed);
  EXPECT_EQ(log.count(FwEventType::kAppDestroyed), 1);
}

TEST_F(ActivityManagerTest, BackgroundUidsListsStoppedApps) {
  install("com.a");
  install("com.b");
  server_.boot();
  server_.user_launch("com.a");
  server_.user_launch("com.b");
  const auto background = server_.activities().background_uids();
  bool found_a = false;
  for (kernelsim::Uid u : background) {
    if (u == uid("com.a")) found_a = true;
    EXPECT_NE(u, uid("com.b"));  // b is foreground
  }
  EXPECT_TRUE(found_a);
}

TEST_F(ActivityManagerTest, UserSwitchToRestoresTaskState) {
  RecordingApp* a = install("com.a");
  install("com.b");
  server_.boot();
  server_.user_launch("com.a");
  server_.user_launch("com.b");
  EXPECT_TRUE(server_.user_switch_to("com.a"));
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.a"));
  EXPECT_EQ(a->count("create:Main"), 1);  // restored, not recreated
  EXPECT_FALSE(server_.user_switch_to("com.never-started"));
}

}  // namespace
}  // namespace eandroid::framework
