// Deep task-stack behaviour: multiple activities per app, cross-app
// interleavings, transparent chains, and back-stack traversal.
#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::RecordingApp;
using State = ActivityRecord::State;

class TaskStackTest : public ::testing::Test {
 protected:
  TaskStackTest() : server_(sim_) {
    Manifest multi = testing::simple_manifest("com.multi");
    multi.activities.push_back(ActivityDecl{"Second", true, {}});
    multi.activities.push_back(ActivityDecl{"Third", true, {}});
    multi.activities.push_back(
        ActivityDecl{"Glass", true, {}, /*transparent=*/true});
    app_ = new RecordingApp();
    server_.install(std::move(multi), std::unique_ptr<AppCode>(app_));
    other_ = new RecordingApp();
    server_.install(testing::simple_manifest("com.other"),
                    std::unique_ptr<AppCode>(other_));
    server_.boot();
    server_.user_launch("com.multi");
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }
  Context& ctx(const std::string& package) {
    return server_.context_of(uid(package));
  }
  void start_own(const std::string& name) {
    ctx("com.multi").start_activity(Intent::explicit_for("com.multi", name));
  }

  sim::Simulator sim_;
  SystemServer server_;
  RecordingApp* app_ = nullptr;
  RecordingApp* other_ = nullptr;
};

TEST_F(TaskStackTest, DeepStackStatesAreConsistent) {
  start_own("Second");
  start_own("Third");
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Main"),
            State::kStopped);
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Second"),
            State::kStopped);
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Third"),
            State::kResumed);
}

TEST_F(TaskStackTest, BackUnwindsTheStackInOrder) {
  start_own("Second");
  start_own("Third");
  server_.user_press_back();
  EXPECT_EQ(server_.activities().foreground_activity()->name, "Second");
  server_.user_press_back();
  EXPECT_EQ(server_.activities().foreground_activity()->name, "Main");
  EXPECT_TRUE(app_->saw("destroy:Third"));
  EXPECT_TRUE(app_->saw("destroy:Second"));
  EXPECT_EQ(app_->count("resume:Main"), 2);
}

TEST_F(TaskStackTest, TransparentOnTopOfTransparentPausesChain) {
  start_own("Glass");
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Main"),
            State::kPaused);
  // A second transparent layer keeps the whole chain visible/paused.
  start_own("Glass");
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Main"),
            State::kPaused);
  // An opaque activity on top stops everything beneath.
  start_own("Second");
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Main"),
            State::kStopped);
}

TEST_F(TaskStackTest, FinishBuriedActivityDoesNotChangeForeground) {
  start_own("Second");
  start_own("Third");
  EXPECT_TRUE(ctx("com.multi").finish_activity("Second"));
  EXPECT_EQ(server_.activities().foreground_activity()->name, "Third");
  server_.user_press_back();
  // Second is gone; back lands on Main.
  EXPECT_EQ(server_.activities().foreground_activity()->name, "Main");
}

TEST_F(TaskStackTest, CrossAppActivityInSameTaskUnwindsAcrossApps) {
  ctx("com.multi").start_activity(Intent::explicit_for("com.other", "Main"));
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.other"));
  server_.user_press_back();
  EXPECT_EQ(server_.activities().foreground_uid(), uid("com.multi"));
  EXPECT_TRUE(other_->saw("destroy:Main"));
}

TEST_F(TaskStackTest, HomeAndReturnRestoresWholeStack) {
  start_own("Second");
  start_own("Third");
  server_.user_press_home();
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Third"),
            State::kStopped);
  server_.user_switch_to("com.multi");
  EXPECT_EQ(server_.activities().foreground_activity()->name, "Third");
  EXPECT_EQ(server_.activities().activity_state("com.multi", "Second"),
            State::kStopped);
  // Nothing was recreated.
  EXPECT_EQ(app_->count("create:Third"), 1);
}

TEST_F(TaskStackTest, RelaunchFromLauncherKeepsStackTop) {
  start_own("Second");
  server_.user_press_home();
  // Tapping the icon again resumes the task as it was (Second on top).
  server_.user_launch("com.multi");
  EXPECT_EQ(server_.activities().foreground_activity()->name, "Second");
}

TEST_F(TaskStackTest, SameActivityTwiceMakesTwoRecords) {
  start_own("Second");
  start_own("Second");
  server_.user_press_back();
  // Still a "Second" beneath.
  EXPECT_EQ(server_.activities().foreground_activity()->name, "Second");
  EXPECT_EQ(app_->count("create:Second"), 2);
}

}  // namespace
}  // namespace eandroid::framework
