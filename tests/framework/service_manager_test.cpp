#include "framework/service_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::EventLog;
using testing::RecordingApp;

class ServiceManagerTest : public ::testing::Test {
 protected:
  ServiceManagerTest() : server_(sim_) {
    auto victim = std::make_unique<RecordingApp>();
    victim_ = victim.get();
    Manifest m = testing::simple_manifest("com.victim");
    m.services.push_back(ServiceDecl{"Work", /*exported=*/true, {}});
    m.services.push_back(ServiceDecl{"Hidden", /*exported=*/false, {}});
    server_.install(std::move(m), std::move(victim));

    auto client = std::make_unique<RecordingApp>();
    server_.install(testing::simple_manifest("com.client"), std::move(client));
    server_.boot();
  }

  kernelsim::Uid uid(const std::string& package) {
    return server_.packages().find(package)->uid;
  }

  Intent work_intent() { return Intent::explicit_for("com.victim", "Work"); }

  sim::Simulator sim_;
  SystemServer server_;
  RecordingApp* victim_ = nullptr;
};

TEST_F(ServiceManagerTest, StartServiceBringsItUp) {
  EXPECT_TRUE(server_.services().start_service(uid("com.client"),
                                               work_intent()));
  EXPECT_TRUE(server_.services().running("com.victim", "Work"));
  EXPECT_TRUE(victim_->saw("svc_create:Work"));
  // Cold start: onStartCommand arrives after the main-thread dispatch
  // latency, not synchronously inside startService().
  EXPECT_FALSE(victim_->saw("svc_start:Work"));
  sim_.run_for(ServiceManager::kStartCommandDispatch);
  EXPECT_TRUE(victim_->saw("svc_start:Work"));
}

TEST_F(ServiceManagerTest, WarmStartDeliversSynchronously) {
  server_.ensure_process(uid("com.victim"));
  EXPECT_TRUE(server_.services().start_service(uid("com.client"),
                                               work_intent()));
  EXPECT_TRUE(victim_->saw("svc_start:Work"));
}

TEST_F(ServiceManagerTest, StartNonExportedForeignServiceFails) {
  EXPECT_FALSE(server_.services().start_service(
      uid("com.client"), Intent::explicit_for("com.victim", "Hidden")));
}

TEST_F(ServiceManagerTest, OwnerCanStartItsHiddenService) {
  EXPECT_TRUE(server_.services().start_service(
      uid("com.victim"), Intent::explicit_for("com.victim", "Hidden")));
}

TEST_F(ServiceManagerTest, StopServiceTearsDownWhenUnbound) {
  server_.services().start_service(uid("com.client"), work_intent());
  EXPECT_TRUE(server_.services().stop_service(uid("com.client"),
                                              work_intent()));
  EXPECT_FALSE(server_.services().running("com.victim", "Work"));
  EXPECT_TRUE(victim_->saw("svc_destroy:Work"));
}

TEST_F(ServiceManagerTest, StopSelfWorksFromOwner) {
  server_.services().start_service(uid("com.victim"), work_intent());
  EXPECT_TRUE(server_.services().stop_self(uid("com.victim"), "Work"));
  EXPECT_FALSE(server_.services().running("com.victim", "Work"));
}

TEST_F(ServiceManagerTest, BindingKeepsServiceAliveThroughStop) {
  // The attack #3 semantics, verbatim from the paper.
  server_.services().start_service(uid("com.victim"), work_intent());
  const auto binding =
      server_.services().bind_service(uid("com.client"), work_intent());
  ASSERT_TRUE(binding.has_value());

  server_.services().stop_service(uid("com.victim"), work_intent());
  EXPECT_TRUE(server_.services().running("com.victim", "Work"));
  EXPECT_FALSE(victim_->saw("svc_destroy:Work"));

  EXPECT_TRUE(server_.services().unbind_service(uid("com.client"), *binding));
  EXPECT_FALSE(server_.services().running("com.victim", "Work"));
  EXPECT_TRUE(victim_->saw("svc_destroy:Work"));
}

TEST_F(ServiceManagerTest, BindAloneBringsServiceUp) {
  const auto binding =
      server_.services().bind_service(uid("com.client"), work_intent());
  ASSERT_TRUE(binding.has_value());
  EXPECT_TRUE(server_.services().running("com.victim", "Work"));
  EXPECT_EQ(server_.services().binding_count("com.victim", "Work"), 1);
}

TEST_F(ServiceManagerTest, MultipleBindingsAllMustUnbind) {
  const auto b1 =
      server_.services().bind_service(uid("com.client"), work_intent());
  const auto b2 =
      server_.services().bind_service(uid("com.victim"), work_intent());
  ASSERT_TRUE(b1 && b2);
  EXPECT_EQ(server_.services().binding_count("com.victim", "Work"), 2);
  server_.services().unbind_service(uid("com.client"), *b1);
  EXPECT_TRUE(server_.services().running("com.victim", "Work"));
  server_.services().unbind_service(uid("com.victim"), *b2);
  EXPECT_FALSE(server_.services().running("com.victim", "Work"));
}

TEST_F(ServiceManagerTest, UnbindWithWrongOwnerFails) {
  const auto binding =
      server_.services().bind_service(uid("com.client"), work_intent());
  ASSERT_TRUE(binding.has_value());
  EXPECT_FALSE(server_.services().unbind_service(uid("com.victim"), *binding));
  EXPECT_TRUE(server_.services().running("com.victim", "Work"));
}

TEST_F(ServiceManagerTest, UnbindTwiceFails) {
  const auto binding =
      server_.services().bind_service(uid("com.client"), work_intent());
  server_.services().unbind_service(uid("com.client"), *binding);
  EXPECT_FALSE(server_.services().unbind_service(uid("com.client"), *binding));
}

TEST_F(ServiceManagerTest, ClientDeathDropsBindingAndPublishesUnbind) {
  server_.ensure_process(uid("com.client"));
  const auto binding =
      server_.services().bind_service(uid("com.client"), work_intent());
  ASSERT_TRUE(binding.has_value());
  EventLog log(server_.events());
  server_.kill_app(uid("com.client"));
  EXPECT_FALSE(server_.services().running("com.victim", "Work"));
  EXPECT_EQ(log.count(FwEventType::kServiceUnbind), 1);
}

TEST_F(ServiceManagerTest, StartedServiceSurvivesClientDeath) {
  server_.services().start_service(uid("com.client"), work_intent());
  server_.services().bind_service(uid("com.client"), work_intent());
  server_.kill_app(uid("com.client"));
  // startService has no lifecycle tie to the caller.
  EXPECT_TRUE(server_.services().running("com.victim", "Work"));
}

TEST_F(ServiceManagerTest, EventsCarryDrivingAndDrivenUids) {
  EventLog log(server_.events());
  server_.services().start_service(uid("com.client"), work_intent());
  const FwEvent* start = log.last(FwEventType::kServiceStart);
  ASSERT_NE(start, nullptr);
  EXPECT_EQ(start->driving, uid("com.client"));
  EXPECT_EQ(start->driven, uid("com.victim"));
  EXPECT_EQ(start->component, "Work");
}

TEST_F(ServiceManagerTest, RunningServicesOfListsAliveOnly) {
  server_.services().start_service(uid("com.victim"), work_intent());
  auto running = server_.services().running_services_of(uid("com.victim"));
  ASSERT_EQ(running.size(), 1u);
  EXPECT_EQ(running[0], "Work");
  server_.services().stop_self(uid("com.victim"), "Work");
  EXPECT_TRUE(server_.services().running_services_of(uid("com.victim")).empty());
}

TEST_F(ServiceManagerTest, RestartAfterStopWorks) {
  server_.services().start_service(uid("com.client"), work_intent());
  server_.services().stop_service(uid("com.client"), work_intent());
  EXPECT_TRUE(server_.services().start_service(uid("com.client"),
                                               work_intent()));
  EXPECT_TRUE(server_.services().running("com.victim", "Work"));
  EXPECT_EQ(victim_->count("svc_create:Work"), 2);
}

}  // namespace
}  // namespace eandroid::framework
