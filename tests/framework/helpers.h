// Shared helpers for framework-level tests.
#pragma once

#include <string>
#include <vector>

#include "framework/app_code.h"
#include "framework/context.h"
#include "framework/events.h"
#include "framework/manifest.h"
#include "framework/system_server.h"
#include "sim/simulator.h"

namespace eandroid::framework::testing {

/// App code that records every callback as "event:activity" strings.
class RecordingApp : public AppCode {
 public:
  void on_process_start(Context&) override { log.push_back("process_start"); }
  void on_activity_create(Context&, const std::string& a) override {
    log.push_back("create:" + a);
  }
  void on_activity_resume(Context&, const std::string& a) override {
    log.push_back("resume:" + a);
  }
  void on_activity_pause(Context&, const std::string& a) override {
    log.push_back("pause:" + a);
  }
  void on_activity_stop(Context&, const std::string& a) override {
    log.push_back("stop:" + a);
  }
  void on_activity_destroy(Context&, const std::string& a) override {
    log.push_back("destroy:" + a);
  }
  void on_service_create(Context&, const std::string& s) override {
    log.push_back("svc_create:" + s);
  }
  void on_service_start_command(Context&, const std::string& s) override {
    log.push_back("svc_start:" + s);
  }
  void on_service_destroy(Context&, const std::string& s) override {
    log.push_back("svc_destroy:" + s);
  }

  [[nodiscard]] bool saw(const std::string& entry) const {
    for (const auto& e : log) {
      if (e == entry) return true;
    }
    return false;
  }
  [[nodiscard]] int count(const std::string& entry) const {
    int n = 0;
    for (const auto& e : log) {
      if (e == entry) ++n;
    }
    return n;
  }

  std::vector<std::string> log;
};

/// A plain one-activity manifest.
inline Manifest simple_manifest(const std::string& package,
                                bool exported = true) {
  Manifest m;
  m.package = package;
  m.activities.push_back(ActivityDecl{"Main", exported, {}});
  return m;
}

/// Records framework events published on the bus.
class EventLog {
 public:
  explicit EventLog(EventBus& bus) {
    bus.subscribe([this](const FwEvent& event) { events.push_back(event); });
  }
  [[nodiscard]] int count(FwEventType type) const {
    int n = 0;
    for (const auto& e : events) {
      if (e.type == type) ++n;
    }
    return n;
  }
  [[nodiscard]] const FwEvent* last(FwEventType type) const {
    for (auto it = events.rbegin(); it != events.rend(); ++it) {
      if (it->type == type) return &*it;
    }
    return nullptr;
  }
  std::vector<FwEvent> events;
};

}  // namespace eandroid::framework::testing
