#include "framework/notification_service.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"

namespace eandroid::framework {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;
using apps::Testbed;

class NotificationTest : public ::testing::Test {
 protected:
  NotificationTest() {
    DemoAppSpec poster = apps::message_spec();
    poster.package = "com.poster";
    bed_.install<DemoApp>(poster);
    bed_.install<DemoApp>(apps::victim_spec());
    bed_.start();
  }
  Testbed bed_;
};

TEST_F(NotificationTest, PostAndCancel) {
  auto& ctx = bed_.context_of("com.poster");
  const std::uint64_t id = ctx.post_notification("hello", "Main");
  EXPECT_EQ(bed_.server().notifications().count_of(bed_.uid_of("com.poster")),
            1u);
  ctx.cancel_notification(id);
  EXPECT_EQ(bed_.server().notifications().count_of(bed_.uid_of("com.poster")),
            0u);
}

TEST_F(NotificationTest, TapLaunchesPosterAsUserAction) {
  const std::uint64_t id =
      bed_.context_of("com.poster").post_notification("hello", "Main");
  const std::uint64_t windows_before =
      bed_.eandroid()->tracker().opened_total();
  EXPECT_TRUE(bed_.server().notifications().user_tap_notification(id));
  EXPECT_EQ(bed_.server().activities().foreground_uid(),
            bed_.uid_of("com.poster"));
  // User-driven: no collateral window.
  EXPECT_EQ(bed_.eandroid()->tracker().opened_total(), windows_before);
  // Dismissed after the tap.
  EXPECT_FALSE(bed_.server().notifications().user_tap_notification(id));
}

TEST_F(NotificationTest, FullScreenInterruptsForeground) {
  bed_.server().user_launch("com.example.victim");
  const std::uint64_t id =
      bed_.context_of("com.poster")
          .post_full_screen_notification("ALARM", "Main");
  EXPECT_NE(id, 0u);
  EXPECT_EQ(bed_.server().activities().foreground_uid(),
            bed_.uid_of("com.poster"));
  // The app-driven interruption opens a Fig 5b window against the poster.
  EXPECT_TRUE(bed_.eandroid()->tracker().has_window(
      core::WindowKind::kInterrupt, bed_.uid_of("com.poster"),
      bed_.uid_of("com.example.victim")));
}

TEST_F(NotificationTest, FullScreenLeavesVictimWakelockLeaked) {
  // The §III-A story end to end through a notification instead of an
  // overlay: victim foreground with its buggy wakelock, a full-screen
  // alarm takes over, the victim is stopped still holding the lock.
  bed_.server().user_launch("com.example.victim");
  ASSERT_EQ(bed_.server().power().held_count(), 1u);
  bed_.context_of("com.poster")
      .post_full_screen_notification("ALARM", "Main");
  EXPECT_EQ(bed_.server().activities().activity_state("com.example.victim",
                                                      DemoApp::kRootActivity),
            ActivityRecord::State::kStopped);
  EXPECT_EQ(bed_.server().power().held_count(), 1u);  // leaked
  EXPECT_TRUE(bed_.eandroid()->tracker().has_window(
      core::WindowKind::kWakelock, bed_.uid_of("com.example.victim"),
      kernelsim::Uid{}));
}

TEST_F(NotificationTest, FullScreenUnknownActivityFails) {
  EXPECT_EQ(bed_.context_of("com.poster")
                .post_full_screen_notification("x", "Nope"),
            0u);
}

TEST_F(NotificationTest, CancelAllOfPoster) {
  auto& ctx = bed_.context_of("com.poster");
  ctx.post_notification("a", "Main");
  ctx.post_notification("b", "Main");
  bed_.server().notifications().cancel_all_of(bed_.uid_of("com.poster"));
  EXPECT_TRUE(bed_.server().notifications().active().empty());
}

}  // namespace
}  // namespace eandroid::framework
