#include "framework/window_manager.h"

#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::framework {
namespace {

using testing::RecordingApp;

TEST(WindowManagerTest, DialogStackIsLifo) {
  sim::Simulator sim;
  WindowManager wm(sim);
  const std::uint64_t d1 = wm.show_dialog(kernelsim::Uid{10000}, "first");
  const std::uint64_t d2 = wm.show_dialog(kernelsim::Uid{10001}, "second");
  ASSERT_NE(wm.top_dialog(), nullptr);
  EXPECT_EQ(wm.top_dialog()->id, d2);
  wm.dismiss_dialog(d2);
  EXPECT_EQ(wm.top_dialog()->id, d1);
  wm.dismiss_dialog(d1);
  EXPECT_EQ(wm.top_dialog(), nullptr);
}

TEST(WindowManagerTest, DismissDialogsOfUid) {
  sim::Simulator sim;
  WindowManager wm(sim);
  wm.show_dialog(kernelsim::Uid{10000}, "a");
  wm.show_dialog(kernelsim::Uid{10000}, "b");
  wm.show_dialog(kernelsim::Uid{10001}, "c");
  wm.dismiss_dialogs_of(kernelsim::Uid{10000});
  EXPECT_FALSE(wm.has_dialog(kernelsim::Uid{10000}));
  EXPECT_TRUE(wm.has_dialog(kernelsim::Uid{10001}));
}

TEST(WindowManagerTest, ShmChangesByDialogOffsetExactly) {
  sim::Simulator sim;
  WindowManager wm(sim);
  const std::uint64_t before = wm.surface_flinger_shm_bytes();
  const std::uint64_t id = wm.show_dialog(kernelsim::Uid{10000}, "exit_dlg");
  const std::uint64_t after = wm.surface_flinger_shm_bytes();
  EXPECT_EQ(after - before, WindowManager::dialog_shm_offset("exit_dlg"));
  wm.dismiss_dialog(id);
  EXPECT_EQ(wm.surface_flinger_shm_bytes(), before);
}

TEST(WindowManagerTest, DistinctDialogStylesHaveDistinctOffsets) {
  EXPECT_NE(WindowManager::dialog_shm_offset("exit_com.example.victim"),
            WindowManager::dialog_shm_offset("exit_com.example.other"));
  // Offsets are page-aligned and non-zero.
  EXPECT_EQ(WindowManager::dialog_shm_offset("anything") % 4096, 0u);
  EXPECT_GT(WindowManager::dialog_shm_offset("anything"), 0u);
}

TEST(WindowManagerTest, ShmReflectsForegroundActivity) {
  sim::Simulator sim;
  WindowManager wm(sim);
  std::string fg = "pkg/A";
  wm.set_foreground_name_provider([&fg] { return fg; });
  const std::uint64_t with_a = wm.surface_flinger_shm_bytes();
  fg = "pkg/B";
  const std::uint64_t with_b = wm.surface_flinger_shm_bytes();
  EXPECT_NE(with_a, with_b);
  fg = "pkg/A";
  EXPECT_EQ(wm.surface_flinger_shm_bytes(), with_a);
}

TEST(WindowManagerTest, TapOnOkHitsDialogOwner) {
  sim::Simulator sim;
  SystemServer server(sim);
  auto app = std::make_unique<RecordingApp>();
  server.install(testing::simple_manifest("com.a"), std::move(app));
  server.boot();
  server.user_launch("com.a");
  const kernelsim::Uid uid = server.packages().find("com.a")->uid;

  bool ok_clicked = false;
  class DialogApp : public AppCode {
   public:
    explicit DialogApp(bool* flag) : flag_(flag) {}
    void on_dialog_result(Context&, const std::string&, bool ok) override {
      if (ok) *flag_ = true;
    }
    bool* flag_;
  };
  // Re-register a dialog-aware app under another package.
  server.install(testing::simple_manifest("com.dlg"),
                 std::make_unique<DialogApp>(&ok_clicked));
  const kernelsim::Uid dlg_uid = server.packages().find("com.dlg")->uid;
  server.ensure_process(dlg_uid);
  server.windows().show_dialog(dlg_uid, "confirm", 540, 960);
  server.user_tap(540, 960);
  EXPECT_TRUE(ok_clicked);
  EXPECT_EQ(server.windows().top_dialog(), nullptr);
  (void)uid;
}

TEST(WindowManagerTest, TapOutsideOkIsCancel) {
  sim::Simulator sim;
  SystemServer server(sim);
  bool got_ok = true;
  class DialogApp : public AppCode {
   public:
    explicit DialogApp(bool* flag) : flag_(flag) {}
    void on_dialog_result(Context&, const std::string&, bool ok) override {
      *flag_ = ok;
    }
    bool* flag_;
  };
  server.install(testing::simple_manifest("com.dlg"),
                 std::make_unique<DialogApp>(&got_ok));
  server.boot();
  const kernelsim::Uid dlg_uid = server.packages().find("com.dlg")->uid;
  server.ensure_process(dlg_uid);
  server.windows().show_dialog(dlg_uid, "confirm", 540, 960);
  server.user_tap(10, 10);
  EXPECT_FALSE(got_ok);
}

}  // namespace
}  // namespace eandroid::framework
