#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"

namespace eandroid::framework {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;
using apps::Testbed;

class ForegroundServiceTest : public ::testing::Test {
 protected:
  ForegroundServiceTest() {
    DemoAppSpec spec = apps::victim_spec();
    spec.package = "com.fgs.app";
    spec.wakelock_bug = false;
    spec.exit_dialog = false;
    bed_.install<DemoApp>(spec);
    bed_.install<DemoApp>(apps::message_spec());
    bed_.start();
  }
  Intent service_intent() {
    return Intent::explicit_for("com.fgs.app", DemoApp::kService);
  }
  Testbed bed_;
};

TEST_F(ForegroundServiceTest, PromoteRequiresRunningService) {
  auto& ctx = bed_.context_of("com.fgs.app");
  EXPECT_FALSE(ctx.start_foreground(DemoApp::kService));
  ctx.start_service(service_intent());
  EXPECT_TRUE(ctx.start_foreground(DemoApp::kService));
  EXPECT_TRUE(bed_.server().services().is_foreground_service(
      "com.fgs.app", DemoApp::kService));
}

TEST_F(ForegroundServiceTest, DemoteAndReuse) {
  auto& ctx = bed_.context_of("com.fgs.app");
  ctx.start_service(service_intent());
  ctx.start_foreground(DemoApp::kService);
  EXPECT_TRUE(ctx.stop_foreground(DemoApp::kService));
  EXPECT_FALSE(ctx.stop_foreground(DemoApp::kService));  // already demoted
  EXPECT_FALSE(bed_.server().services().has_foreground_service(
      bed_.uid_of("com.fgs.app")));
}

TEST_F(ForegroundServiceTest, StoppingServiceClearsForegroundFlag) {
  auto& ctx = bed_.context_of("com.fgs.app");
  ctx.start_service(service_intent());
  ctx.start_foreground(DemoApp::kService);
  ctx.stop_service(service_intent());
  EXPECT_FALSE(bed_.server().services().is_foreground_service(
      "com.fgs.app", DemoApp::kService));
}

TEST_F(ForegroundServiceTest, RaisesLmkPriority) {
  auto& ctx = bed_.context_of("com.fgs.app");
  ctx.start_service(service_intent());
  EXPECT_EQ(bed_.server().lmk().priority_of(bed_.uid_of("com.fgs.app")), 2);
  ctx.start_foreground(DemoApp::kService);
  EXPECT_EQ(bed_.server().lmk().priority_of(bed_.uid_of("com.fgs.app")), 1);
}

TEST_F(ForegroundServiceTest, SurvivesMemoryPressureThatKillsCached) {
  auto& ctx = bed_.context_of("com.fgs.app");
  ctx.start_service(service_intent());
  ctx.start_foreground(DemoApp::kService);
  // A cached app plus tight budget: the cached one dies, the foreground
  // service's host survives.
  bed_.server().user_launch("com.example.message");
  bed_.server().user_press_home();
  bed_.server().lmk().set_budget_mb(250);
  bed_.server().lmk().maybe_reclaim();
  EXPECT_TRUE(bed_.server().pid_of(bed_.uid_of("com.fgs.app")).valid());
}

TEST_F(ForegroundServiceTest, HostDeathClearsFlag) {
  auto& ctx = bed_.context_of("com.fgs.app");
  ctx.start_service(service_intent());
  ctx.start_foreground(DemoApp::kService);
  bed_.server().kill_app(bed_.uid_of("com.fgs.app"));
  EXPECT_FALSE(bed_.server().services().is_foreground_service(
      "com.fgs.app", DemoApp::kService));
}

}  // namespace
}  // namespace eandroid::framework
