// Parameterized sweeps: invariants that must hold across whole parameter
// ranges, not just the defaults.
#include <gtest/gtest.h>

#include <array>
#include <cstddef>
#include <map>
#include <string>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/scenarios.h"
#include "apps/testbed.h"
#include "exp/parallel_runner.h"
#include "hw/cpu_power_model.h"

namespace eandroid::apps {
namespace {

// --- every scenario upholds the global invariants -------------------------

using ScenarioFn = ScenarioResult (*)(std::uint64_t, const TestbedOptions&);

ScenarioResult attack5_default(std::uint64_t seed,
                               const TestbedOptions& base) {
  return run_attack5(seed, 255, base);
}
ScenarioResult attack6_default(std::uint64_t seed,
                               const TestbedOptions& base) {
  return run_attack6(seed, false, base);
}

struct NamedScenario {
  const char* name;
  ScenarioFn fn;
};

constexpr std::array<NamedScenario, 12> kAllScenarios = {{
    {"scene1", run_scene1},
    {"scene2", run_scene2},
    {"attack1", run_attack1},
    {"attack2", run_attack2},
    {"attack3", run_attack3},
    {"attack4", run_attack4},
    {"attack5", attack5_default},
    {"attack6", attack6_default},
    {"chain", run_chain_attack},
    {"multi", run_multi_attack},
    {"push", run_push_flood},
    {"benign", run_benign_interruption},
}};

/// All twelve scenarios simulated once, fanned out across the
/// exp::ParallelRunner on first use; each TEST_P below asserts on its
/// slice of the shared batch instead of re-running serially.
const ScenarioResult& scenario_result(const char* name) {
  static const std::map<std::string, ScenarioResult> cache = [] {
    const auto results = exp::run_indexed<ScenarioResult>(
        kAllScenarios.size(),
        [](std::size_t i) { return kAllScenarios[i].fn(1, {}); });
    std::map<std::string, ScenarioResult> by_name;
    for (std::size_t i = 0; i < kAllScenarios.size(); ++i) {
      by_name.emplace(kAllScenarios[i].name, results[i]);
    }
    return by_name;
  }();
  return cache.at(name);
}

class ScenarioSweep : public ::testing::TestWithParam<NamedScenario> {};

TEST_P(ScenarioSweep, UpholdsGlobalInvariants) {
  const ScenarioResult& r = scenario_result(GetParam().name);
  // Conservation across all three profilers.
  EXPECT_NEAR(r.android_view.total_mj, r.battery_drained_mj, 1e-3);
  EXPECT_NEAR(r.powertutor_view.total_mj, r.battery_drained_mj, 1e-3);
  EXPECT_NEAR(r.ea_view.true_total_mj, r.battery_drained_mj, 1e-3);
  // No negative attribution; percents within [0, 200] (collateral rows
  // may exceed 100% of drain only in pathological chains, never 2x).
  for (const auto& row : r.ea_view.rows) {
    EXPECT_GE(row.original_mj, -1e-9) << row.label;
    EXPECT_GE(row.collateral_mj, -1e-9) << row.label;
  }
  // Window bookkeeping closed out.
  EXPECT_GE(r.windows_opened, r.windows_closed);
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, ScenarioSweep, ::testing::ValuesIn(kAllScenarios),
    [](const ::testing::TestParamInfo<NamedScenario>& info) {
      return std::string(info.param.name);
    });

// --- attack #5: collateral monotone in the escalation level ---------------

class BrightnessSweep : public ::testing::TestWithParam<int> {};

TEST_P(BrightnessSweep, CollateralGrowsWithLevel) {
  const int level = GetParam();
  const ScenarioResult r = run_attack5(1, level);
  const core::EARow* malware = r.ea_view.row_of(BrightnessMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  // The auto level is 102; levels above it cost, proportionally.
  const double expected_ratio =
      static_cast<double>(level - 102) / (255 - 102);
  const ScenarioResult full = run_attack5(1, 255);
  const double full_collateral =
      full.ea_view.row_of(BrightnessMalware::kPackage)->collateral_mj;
  EXPECT_NEAR(malware->collateral_mj / full_collateral, expected_ratio, 0.08)
      << "level " << level;
}

INSTANTIATE_TEST_SUITE_P(Levels, BrightnessSweep,
                         ::testing::Values(120, 160, 200, 255));

// --- sampling period must not change the accounting -----------------------

class SamplePeriodSweep : public ::testing::TestWithParam<int> {};

TEST_P(SamplePeriodSweep, AccountingIndependentOfPeriod) {
  TestbedOptions options;
  options.sample_period = sim::millis(GetParam());
  Testbed bed(options);
  DemoAppSpec spec = message_spec();
  spec.foreground_cpu = 0.3;
  bed.install<DemoApp>(spec);
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(30));
  // Steady load: the integral is exact regardless of window size.
  EXPECT_NEAR(bed.battery_stats().app_energy_mj(
                  bed.uid_of("com.example.message")),
              0.3 * 1000.0 * 30.0, 1.0)
      << "period " << GetParam() << " ms";
  EXPECT_NEAR(bed.battery_stats().total_mj(),
              bed.server().battery().consumed_total_mj(), 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Periods, SamplePeriodSweep,
                         ::testing::Values(50, 100, 250, 500, 1000));

// --- all screen-keeping wakelock types behave identically ------------------

class WakelockTypeSweep
    : public ::testing::TestWithParam<framework::WakelockType> {};

TEST_P(WakelockTypeSweep, ScreenKeepingLocksForceScreenAndCharge) {
  Testbed bed;
  DemoAppSpec spec = message_spec();
  spec.package = "com.locker";
  spec.permissions = {framework::Permission::kWakeLock};
  bed.install<DemoApp>(spec);
  bed.start();
  bed.context_of("com.locker").acquire_wakelock(GetParam(), "sweep");
  bed.run_for(sim::minutes(2));
  const bool keeps_screen = framework::keeps_screen_on(GetParam());
  EXPECT_EQ(bed.server().power().screen_on(), keeps_screen);
  EXPECT_FALSE(bed.server().power().suspended());  // all types keep CPU
  const double screen_collateral = bed.eandroid()->engine().collateral_from(
      bed.uid_of("com.locker"), core::Entity::screen());
  if (keeps_screen) {
    EXPECT_GT(screen_collateral, 0.0);
  } else {
    EXPECT_DOUBLE_EQ(screen_collateral, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(Types, WakelockTypeSweep,
                         ::testing::Values(framework::WakelockType::kPartial,
                                           framework::WakelockType::kScreenDim,
                                           framework::WakelockType::kScreenBright,
                                           framework::WakelockType::kFull));

// --- DVFS: energy monotone in load across the step boundaries -------------

class DvfsLoadSweep : public ::testing::TestWithParam<int> {};

TEST_P(DvfsLoadSweep, EnergyMonotoneAndConserved) {
  TestbedOptions options;
  options.params = hw::nexus4_dvfs_params();
  Testbed bed(options);
  DemoAppSpec spec = message_spec();
  spec.foreground_cpu = GetParam() / 100.0;
  bed.install<DemoApp>(spec);
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(20));
  EXPECT_NEAR(bed.battery_stats().total_mj(),
              bed.server().battery().consumed_total_mj(), 1e-3);
  // Cross-check against the model directly.
  const hw::CpuPowerModel model(bed.server().params());
  const double expected =
      model.operating_point(GetParam() / 100.0).active_mw * 20.0;
  EXPECT_NEAR(bed.battery_stats().app_energy_mj(
                  bed.uid_of("com.example.message")),
              expected, expected * 0.02 + 1.0);
}

INSTANTIATE_TEST_SUITE_P(Loads, DvfsLoadSweep,
                         ::testing::Values(10, 25, 40, 60, 85, 100));

}  // namespace
}  // namespace eandroid::apps
