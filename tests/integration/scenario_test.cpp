// End-to-end reproduction checks for the paper's §VI-A experiments:
// for each scenario, stock Android must stay blind while E-Android
// surfaces the collateral consumer (the Fig 9 "A" vs "E" contrast).
#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/scenarios.h"

namespace eandroid::apps {
namespace {

TEST(ScenarioTest, Scene1AndroidBlamesCameraOnly) {
  const ScenarioResult r = run_scene1();
  // Stock Android: the Camera dwarfs the Message (Fig 1).
  EXPECT_GT(r.android_view.energy_of("com.example.camera"),
            5 * r.android_view.energy_of("com.example.message"));
  // E-Android: the Message is charged the Camera's energy (Fig 9a).
  const core::EARow* message = r.ea_view.row_of("com.example.message");
  ASSERT_NE(message, nullptr);
  EXPECT_GT(message->collateral_mj, 0.0);
  EXPECT_NEAR(message->collateral_mj,
              r.android_view.energy_of("com.example.camera"), 1e-6);
  EXPECT_GE(message->total_mj,
            r.ea_view.total_of("com.example.camera"));
}

TEST(ScenarioTest, Scene1WindowAccounting) {
  const ScenarioResult r = run_scene1();
  EXPECT_EQ(r.windows_opened, 1u);  // Message -> Camera
}

TEST(ScenarioTest, Scene2ChainChargesContacts) {
  const ScenarioResult r = run_scene2();
  const core::EARow* contacts = r.ea_view.row_of("com.example.contacts");
  ASSERT_NE(contacts, nullptr);
  // Contacts is charged for Message AND (through the chain) Camera.
  double from_message = 0.0, from_camera = 0.0;
  for (const auto& item : contacts->inventory) {
    if (item.label == "com.example.message") from_message = item.energy_mj;
    if (item.label == "com.example.camera") from_camera = item.energy_mj;
  }
  EXPECT_GT(from_message, 0.0);
  EXPECT_GT(from_camera, 0.0);
  // Android shows Contacts as nearly free.
  EXPECT_LT(r.android_view.percent_of("com.example.contacts"), 10.0);
  EXPECT_GT(r.ea_view.percent_of("com.example.contacts"), 30.0);
}

TEST(ScenarioTest, Attack1HijackExposedByEAndroid) {
  const ScenarioResult r = run_attack1();
  // Android: the malware looks almost free, the camera eats the battery.
  EXPECT_LT(r.android_view.percent_of(HijackMalware::kPackage), 10.0);
  EXPECT_GT(r.android_view.percent_of("com.example.camera"), 30.0);
  // E-Android: malware total includes the camera's drain.
  const core::EARow* malware = r.ea_view.row_of(HijackMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  EXPECT_NEAR(malware->collateral_mj,
              r.android_view.energy_of("com.example.camera"), 1e-6);
  EXPECT_EQ(r.ea_view.rows[0].label, HijackMalware::kPackage);
}

TEST(ScenarioTest, Attack2BackgroundSpawnExposed) {
  const ScenarioResult r = run_attack2();
  const double victims_android =
      r.android_view.energy_of("com.example.newsfeed") +
      r.android_view.energy_of("com.example.game");
  const core::EARow* malware = r.ea_view.row_of(SpawnerMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  // Both victims' background drain lands on the malware.
  EXPECT_NEAR(malware->collateral_mj, victims_android, 1e-6);
  EXPECT_EQ(r.ea_view.rows[0].label, SpawnerMalware::kPackage);
  // Stock Android keeps the malware near the bottom.
  EXPECT_LT(r.android_view.percent_of(SpawnerMalware::kPackage), 15.0);
}

TEST(ScenarioTest, Attack3OnlyAttackPeriodCharged) {
  const ScenarioResult r = run_attack3();
  const core::EARow* malware = r.ea_view.row_of(BinderMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  // The malware is charged the service energy...
  EXPECT_GT(malware->collateral_mj, 0.0);
  // ...but strictly less than the victim's total-run energy: the second
  // before binding is not charged ("E-Android does not charge the energy
  // consumption beyond that attack to malware").
  const double victim_total =
      r.android_view.energy_of("com.example.victim");
  EXPECT_LT(malware->collateral_mj, victim_total);
  EXPECT_GT(malware->collateral_mj, 0.5 * victim_total);
}

TEST(ScenarioTest, Attack4InterruptAndWakelockChain) {
  const ScenarioResult r = run_attack4();
  const core::EARow* malware = r.ea_view.row_of(InterrupterMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  // Malware charged for the victim and for the screen it kept burning.
  double from_victim = 0.0, from_screen = 0.0;
  for (const auto& item : malware->inventory) {
    if (item.label == "com.example.victim") from_victim = item.energy_mj;
    if (item.label == "Screen") from_screen = item.energy_mj;
  }
  EXPECT_GT(from_victim, 0.0);
  EXPECT_GT(from_screen, 10'000.0);  // ~30 s of forced screen
  // Stock Android attributes none of this to the malware.
  EXPECT_LT(r.android_view.percent_of(InterrupterMalware::kPackage), 5.0);
  // E-Android surfaces the malware at the top of the ranking (the victim
  // row is comparable because its leaked wakelock charges it too; both
  // dwarf everything else).
  ASSERT_GE(r.ea_view.rows.size(), 2u);
  const bool in_top2 =
      r.ea_view.rows[0].label == InterrupterMalware::kPackage ||
      r.ea_view.rows[1].label == InterrupterMalware::kPackage;
  EXPECT_TRUE(in_top2);
}

TEST(ScenarioTest, Attack5BrightnessDeltaCharged) {
  const ScenarioResult r = run_attack5();
  const core::EARow* malware = r.ea_view.row_of(BrightnessMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  EXPECT_GT(malware->collateral_mj, 0.0);
  // All of the malware's collateral is screen energy.
  ASSERT_EQ(malware->inventory.size(), 1u);
  EXPECT_EQ(malware->inventory[0].label, "Screen");
  // Android shows it as ~zero.
  EXPECT_LT(r.android_view.percent_of(BrightnessMalware::kPackage), 2.0);
}

TEST(ScenarioTest, Attack5HigherBrightnessCostsMore) {
  const ScenarioResult full = run_attack5(1, 255);
  const ScenarioResult mild = run_attack5(1, 140);
  const double full_collateral =
      full.ea_view.row_of(BrightnessMalware::kPackage)->collateral_mj;
  const double mild_collateral =
      mild.ea_view.row_of(BrightnessMalware::kPackage)->collateral_mj;
  EXPECT_GT(full_collateral, 2 * mild_collateral);
}

TEST(ScenarioTest, Attack6WakelockScreenCharged) {
  const ScenarioResult r = run_attack6();
  const core::EARow* malware = r.ea_view.row_of(WakelockMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  double from_screen = 0.0;
  for (const auto& item : malware->inventory) {
    if (item.label == "Screen") from_screen = item.energy_mj;
  }
  // 30 s of forced screen at default brightness ≈ 545 mW * 30 s.
  EXPECT_GT(from_screen, 10'000.0);
  // Android books it under the Screen row instead.
  EXPECT_LT(r.android_view.percent_of(WakelockMalware::kPackage), 5.0);
  EXPECT_GT(r.android_view.percent_of("Screen"), 30.0);
}

TEST(ScenarioTest, Attack6ReleasedLockIsCheap) {
  const ScenarioResult leaked = run_attack6(1, /*release_lock=*/false);
  const ScenarioResult released = run_attack6(1, /*release_lock=*/true);
  // The paper's release/no-release comparison: leaking drains far more.
  EXPECT_GT(leaked.battery_drained_mj, 1.5 * released.battery_drained_mj);
  const core::EARow* row =
      released.ea_view.row_of(WakelockMalware::kPackage);
  const double released_collateral = row == nullptr ? 0.0 : row->collateral_mj;
  const double leaked_collateral =
      leaked.ea_view.row_of(WakelockMalware::kPackage)->collateral_mj;
  EXPECT_GT(leaked_collateral, released_collateral + 10'000.0);
}

TEST(ScenarioTest, EnergyEfficiencyViewsAgreeOnTotals) {
  // §VI-B "Energy Efficiency": the profilers observe the same drain.
  const ScenarioResult r = run_scene2();
  EXPECT_NEAR(r.android_view.total_mj, r.battery_drained_mj, 1.0);
  EXPECT_NEAR(r.powertutor_view.total_mj, r.battery_drained_mj, 1.0);
  EXPECT_NEAR(r.ea_view.true_total_mj, r.battery_drained_mj, 1.0);
}

TEST(ScenarioTest, ResultsAreDeterministic) {
  const ScenarioResult a = run_attack4(7);
  const ScenarioResult b = run_attack4(7);
  EXPECT_DOUBLE_EQ(a.battery_drained_mj, b.battery_drained_mj);
  EXPECT_EQ(a.windows_opened, b.windows_opened);
}

TEST(ScenarioTest, RenderComparisonContainsAllThreeViews) {
  const std::string text = render_comparison(run_scene1());
  EXPECT_NE(text.find("Android BatteryStats"), std::string::npos);
  EXPECT_NE(text.find("PowerTutor"), std::string::npos);
  EXPECT_NE(text.find("E-Android"), std::string::npos);
}

}  // namespace
}  // namespace eandroid::apps
