// Extension scenarios beyond the paper's Fig 9 grid: the §III-B multi &
// hybrid attack, the Fig 7 chain as an attack, benign interruption by an
// incoming call, stealth auto-launch, and DVFS accounting.
#include <gtest/gtest.h>

#include "apps/testbed.h"
#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/scenarios.h"

namespace eandroid::apps {
namespace {

TEST(ExtensionTest, ChainAttackChargesWholeChainToMalware) {
  const ScenarioResult r = run_chain_attack();
  const core::EARow* malware = r.ea_view.row_of(BinderMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  double from_b = 0.0, from_c = 0.0, from_screen = 0.0;
  for (const auto& item : malware->inventory) {
    if (item.label == "com.example.middleman") from_b = item.energy_mj;
    if (item.label == "com.example.brightapp") from_c = item.energy_mj;
    if (item.label == "Screen") from_screen = item.energy_mj;
  }
  // Fig 7: "it is reasonable to charge the energy drained by C and screen
  // to A".
  EXPECT_GT(from_b, 0.0);
  EXPECT_GT(from_c, 0.0);
  EXPECT_GT(from_screen, 0.0);
  // Stock Android shows the malware as free.
  EXPECT_LT(r.android_view.percent_of(BinderMalware::kPackage), 1.0);
}

TEST(ExtensionTest, MultiAttackStealthLaunchAndBothVectors) {
  const ScenarioResult r = run_multi_attack();
  const core::EARow* malware = r.ea_view.row_of(HybridMalware::kPackage);
  ASSERT_NE(malware, nullptr);
  double from_victim = 0.0, from_screen = 0.0;
  for (const auto& item : malware->inventory) {
    if (item.label == "com.example.victim") from_victim = item.energy_mj;
    if (item.label == "Screen") from_screen = item.energy_mj;
  }
  EXPECT_GT(from_victim, 0.0);   // pinned service
  EXPECT_GT(from_screen, 0.0);   // brightness escalation
  EXPECT_LT(r.android_view.percent_of(HybridMalware::kPackage), 2.0);
}

TEST(ExtensionTest, MultiAttackNeverOpenedByUser) {
  // The malware is triggered purely by the unlock broadcast.
  Testbed bed;
  DemoAppSpec victim = victim_spec();
  victim.wakelock_bug = false;
  bed.install<DemoApp>(victim);
  HybridMalware* malware =
      bed.install<HybridMalware>(victim.package, DemoApp::kService, 255);
  bed.start();
  EXPECT_FALSE(malware->triggered());
  bed.server().user_unlock();
  EXPECT_TRUE(malware->triggered());
  // It never holds the foreground.
  EXPECT_NE(bed.server().activities().foreground_uid(),
            bed.uid_of(HybridMalware::kPackage));
}

TEST(ExtensionTest, BenignInterruptionStillProfiledCorrectly) {
  const ScenarioResult r = run_benign_interruption();
  // No malware installed; the wakelock-bug app itself gets the forced
  // screen energy on its collateral account.
  const core::EARow* victim = r.ea_view.row_of("com.example.victim");
  ASSERT_NE(victim, nullptr);
  double from_screen = 0.0;
  for (const auto& item : victim->inventory) {
    if (item.label == "Screen") from_screen = item.energy_mj;
  }
  EXPECT_GT(from_screen, 10'000.0);
  // The phone app (system) is never charged as a driver.
  EXPECT_EQ(r.ea_view.row_of(framework::kPhonePackage), nullptr);
  // Stock Android hides it all in the Screen row.
  EXPECT_GT(r.android_view.percent_of("Screen"), 40.0);
}

TEST(ExtensionTest, DvfsReducesEnergyAtPartialLoad) {
  auto run = [](const hw::PowerParams& params) {
    TestbedOptions options;
    options.params = params;
    Testbed bed(options);
    DemoAppSpec app = message_spec();
    app.package = "com.dvfs.app";
    app.foreground_cpu = 0.20;  // partial load: DVFS territory
    bed.install<DemoApp>(app);
    bed.start();
    bed.server().user_launch("com.dvfs.app");
    for (int i = 0; i < 3; ++i) {
      bed.sim().run_for(sim::seconds(20));
      bed.server().user_tap(1, 1);
    }
    bed.run_for(sim::Duration(0));
    return bed.battery_stats().app_energy_mj(bed.uid_of("com.dvfs.app"));
  };
  const double fixed = run(hw::nexus4_params());
  const double dvfs = run(hw::nexus4_dvfs_params());
  EXPECT_LT(dvfs, fixed);       // cheaper cycles at 384 MHz
  EXPECT_GT(dvfs, 0.3 * fixed); // but not free
}

TEST(ExtensionTest, DvfsConservesEnergyInvariant) {
  TestbedOptions options;
  options.params = hw::nexus4_dvfs_params();
  Testbed bed(options);
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(framework::Intent::implicit(
          "android.media.action.VIDEO_CAPTURE"));
  bed.run_for(sim::seconds(30));
  const double drained = bed.server().battery().drained_mj();
  EXPECT_NEAR(bed.battery_stats().total_mj(), drained, 1e-3);
  EXPECT_NEAR(bed.eandroid()->engine().true_total_mj(), drained, 1e-3);
}

TEST(ExtensionTest, ChainAttackDeterministic) {
  const ScenarioResult a = run_chain_attack(3);
  const ScenarioResult b = run_chain_attack(3);
  EXPECT_DOUBLE_EQ(a.battery_drained_mj, b.battery_drained_mj);
  EXPECT_EQ(a.windows_opened, b.windows_opened);
}

}  // namespace
}  // namespace eandroid::apps
