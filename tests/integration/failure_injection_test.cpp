// Failure injection: processes dying mid-window must leave every subsystem
// consistent (link-to-death paths: wakelocks, bindings, activity stacks,
// tracker windows, accounting).
#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace eandroid::apps {
namespace {

using framework::Intent;
using framework::WakelockType;

TEST(FailureInjectionTest, VictimDeathMidActivityWindow) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::explicit_for("com.example.camera", "Main"));
  bed.sim().run_for(sim::seconds(5));
  ASSERT_EQ(bed.eandroid()->tracker().open_count(), 1u);

  bed.server().kill_app(bed.uid_of("com.example.camera"));
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
  EXPECT_FALSE(bed.server().camera().active());  // session cleaned up
  // Collateral charged so far persists.
  bed.run_for(sim::seconds(1));
  EXPECT_GT(bed.eandroid()->engine().collateral_mj(
                bed.uid_of("com.example.message")),
            0.0);
}

TEST(FailureInjectionTest, DriverDeathKeepsWindowOnItsAccount) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::explicit_for("com.example.camera", "Main"));
  bed.sim().run_for(sim::seconds(2));
  bed.server().kill_app(bed.uid_of("com.example.message"));
  // The driven app still runs; the dead driver keeps accruing collateral
  // on its account (the user should still see who started it).
  bed.run_for(sim::seconds(5));
  EXPECT_GT(bed.eandroid()->engine().collateral_mj(
                bed.uid_of("com.example.message")),
            0.0);
}

TEST(FailureInjectionTest, WakelockHolderDeathReleasesScreen) {
  Testbed bed;
  WakelockMalware* malware = bed.install<WakelockMalware>();
  bed.start();
  bed.context_of(WakelockMalware::kPackage);
  malware->attack();
  bed.sim().run_for(sim::minutes(2));
  ASSERT_TRUE(bed.server().power().screen_forced_by_wakelock());

  bed.server().kill_app(bed.uid_of(WakelockMalware::kPackage));
  EXPECT_EQ(bed.server().power().held_count(), 0u);
  EXPECT_FALSE(bed.server().power().screen_on());
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
  // After the death the device suspends: near-zero drain.
  const double before = bed.server().battery().drained_mj();
  bed.run_for(sim::minutes(1));
  const double after = bed.server().battery().drained_mj();
  EXPECT_LT(after - before, 1000.0);
}

TEST(FailureInjectionTest, BindingClientDeathFreesService) {
  Testbed bed;
  DemoAppSpec victim = victim_spec();
  victim.wakelock_bug = false;
  bed.install<DemoApp>(victim);
  BinderMalware* malware =
      bed.install<BinderMalware>(victim.package, DemoApp::kService);
  bed.start();
  bed.context_of(BinderMalware::kPackage);
  bed.context_of(victim.package)
      .start_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.sim().run_for(sim::seconds(1));
  ASSERT_TRUE(malware->bound());
  bed.context_of(victim.package)
      .stop_service(Intent::explicit_for(victim.package, DemoApp::kService));
  ASSERT_TRUE(
      bed.server().services().running(victim.package, DemoApp::kService));

  // Kill the malware: the pinned service must finally die.
  bed.server().kill_app(bed.uid_of(BinderMalware::kPackage));
  EXPECT_FALSE(
      bed.server().services().running(victim.package, DemoApp::kService));
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(), 0.0, 1e-9);
}

TEST(FailureInjectionTest, ServiceHostDeathClosesWindows) {
  Testbed bed;
  DemoAppSpec victim = victim_spec();
  victim.wakelock_bug = false;
  bed.install<DemoApp>(victim);
  bed.install<BinderMalware>(victim.package, DemoApp::kService);
  bed.start();
  bed.context_of(BinderMalware::kPackage);
  bed.context_of(victim.package)
      .start_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.sim().run_for(sim::seconds(1));
  ASSERT_EQ(bed.eandroid()->tracker().open_count(), 1u);
  bed.server().kill_app(bed.uid_of(victim.package));
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
}

TEST(FailureInjectionTest, EnergyConservationSurvivesKills) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.sim().run_for(sim::seconds(3));
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::explicit_for("com.example.camera", "Main"));
  bed.sim().run_for(sim::seconds(3));
  bed.server().kill_app(bed.uid_of("com.example.camera"));
  bed.sim().run_for(sim::seconds(3));
  bed.server().kill_app(bed.uid_of("com.example.victim"));
  bed.run_for(sim::seconds(3));

  const double drained = bed.server().battery().drained_mj();
  EXPECT_NEAR(bed.battery_stats().total_mj(), drained, 1e-3);
  EXPECT_NEAR(bed.eandroid()->engine().true_total_mj(), drained, 1e-3);
}

TEST(FailureInjectionTest, RestartAfterKillWorks) {
  Testbed bed;
  bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.server().kill_app(bed.uid_of("com.example.victim"));
  // Relaunch spawns a fresh process and the app behaves normally.
  bed.server().user_launch("com.example.victim");
  EXPECT_EQ(bed.server().activities().foreground_uid(),
            bed.uid_of("com.example.victim"));
  EXPECT_EQ(bed.server().power().held_count(), 1u);  // fresh wakelock
}

}  // namespace
}  // namespace eandroid::apps
