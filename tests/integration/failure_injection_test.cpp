// Failure injection: processes dying mid-window must leave every subsystem
// consistent (link-to-death paths: wakelocks, bindings, activity stacks,
// tracker windows, accounting).
#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"
#include "core/invariants.h"
#include "core/window.h"
#include "kernel/types.h"

namespace eandroid::apps {
namespace {

using framework::Intent;
using framework::WakelockType;

TEST(FailureInjectionTest, VictimDeathMidActivityWindow) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::explicit_for("com.example.camera", "Main"));
  bed.sim().run_for(sim::seconds(5));
  ASSERT_EQ(bed.eandroid()->tracker().open_count(), 1u);

  bed.server().kill_app(bed.uid_of("com.example.camera"));
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
  EXPECT_FALSE(bed.server().camera().active());  // session cleaned up
  // Collateral charged so far persists.
  bed.run_for(sim::seconds(1));
  EXPECT_GT(bed.eandroid()->engine().collateral_mj(
                bed.uid_of("com.example.message")),
            0.0);
}

TEST(FailureInjectionTest, DriverDeathKeepsWindowOnItsAccount) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::explicit_for("com.example.camera", "Main"));
  bed.sim().run_for(sim::seconds(2));
  bed.server().kill_app(bed.uid_of("com.example.message"));
  // The driven app still runs; the dead driver keeps accruing collateral
  // on its account (the user should still see who started it).
  bed.run_for(sim::seconds(5));
  EXPECT_GT(bed.eandroid()->engine().collateral_mj(
                bed.uid_of("com.example.message")),
            0.0);
}

TEST(FailureInjectionTest, WakelockHolderDeathReleasesScreen) {
  Testbed bed;
  WakelockMalware* malware = bed.install<WakelockMalware>();
  bed.start();
  bed.context_of(WakelockMalware::kPackage);
  malware->attack();
  bed.sim().run_for(sim::minutes(2));
  ASSERT_TRUE(bed.server().power().screen_forced_by_wakelock());

  bed.server().kill_app(bed.uid_of(WakelockMalware::kPackage));
  EXPECT_EQ(bed.server().power().held_count(), 0u);
  EXPECT_FALSE(bed.server().power().screen_on());
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
  // After the death the device suspends: near-zero drain.
  const double before = bed.server().battery().drained_mj();
  bed.run_for(sim::minutes(1));
  const double after = bed.server().battery().drained_mj();
  EXPECT_LT(after - before, 1000.0);
}

TEST(FailureInjectionTest, BindingClientDeathFreesService) {
  Testbed bed;
  DemoAppSpec victim = victim_spec();
  victim.wakelock_bug = false;
  bed.install<DemoApp>(victim);
  BinderMalware* malware =
      bed.install<BinderMalware>(victim.package, DemoApp::kService);
  bed.start();
  bed.context_of(BinderMalware::kPackage);
  bed.context_of(victim.package)
      .start_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.sim().run_for(sim::seconds(1));
  ASSERT_TRUE(malware->bound());
  bed.context_of(victim.package)
      .stop_service(Intent::explicit_for(victim.package, DemoApp::kService));
  ASSERT_TRUE(
      bed.server().services().running(victim.package, DemoApp::kService));

  // Kill the malware: the pinned service must finally die.
  bed.server().kill_app(bed.uid_of(BinderMalware::kPackage));
  EXPECT_FALSE(
      bed.server().services().running(victim.package, DemoApp::kService));
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(), 0.0, 1e-9);
}

TEST(FailureInjectionTest, ServiceHostDeathClosesWindows) {
  Testbed bed;
  DemoAppSpec victim = victim_spec();
  victim.wakelock_bug = false;
  bed.install<DemoApp>(victim);
  bed.install<BinderMalware>(victim.package, DemoApp::kService);
  bed.start();
  bed.context_of(BinderMalware::kPackage);
  bed.context_of(victim.package)
      .start_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.sim().run_for(sim::seconds(1));
  ASSERT_EQ(bed.eandroid()->tracker().open_count(), 1u);
  bed.server().kill_app(bed.uid_of(victim.package));
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
}

TEST(FailureInjectionTest, EnergyConservationSurvivesKills) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.sim().run_for(sim::seconds(3));
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::explicit_for("com.example.camera", "Main"));
  bed.sim().run_for(sim::seconds(3));
  bed.server().kill_app(bed.uid_of("com.example.camera"));
  bed.sim().run_for(sim::seconds(3));
  bed.server().kill_app(bed.uid_of("com.example.victim"));
  bed.run_for(sim::seconds(3));

  const double drained = bed.server().battery().drained_mj();
  EXPECT_NEAR(bed.battery_stats().total_mj(), drained, 1e-3);
  EXPECT_NEAR(bed.eandroid()->engine().true_total_mj(), drained, 1e-3);
}

/// Runs every invariant check against `bed` and expects a clean report.
void expect_invariants_hold(Testbed& bed) {
  core::InvariantChecker checker(bed.server());
  checker.attach(bed.eandroid());
  checker.attach(&bed.battery_stats());
  checker.attach(&bed.power_tutor());
  const core::InvariantReport report = checker.check();
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(FailureInjectionTest, KillDuringBroadcastDelivery) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  const kernelsim::Uid receiver = bed.uid_of("com.example.message");
  bed.context_of("com.example.message").register_receiver("test.PING");

  // Park the delivery on the receiver's main thread, then kill it while
  // the broadcast is still in flight.
  bed.server().set_app_hung(receiver, true);
  bed.server().broadcasts().send_broadcast(kernelsim::kSystemUid, "test.PING",
                                           /*by_system=*/true);
  ASSERT_EQ(bed.server().main_queue_depth(receiver), 1u);
  bed.server().kill_app(receiver);

  EXPECT_EQ(bed.server().main_queue_depth(receiver), 0u);
  bed.run_for(sim::seconds(15));
  EXPECT_EQ(bed.server().anr_kills(), 0u);  // the stale check is disarmed
  expect_invariants_hold(bed);
}

TEST(FailureInjectionTest, KillWithPendingAlarm) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.start();
  const kernelsim::Uid owner = bed.uid_of("com.example.message");
  bed.context_of("com.example.message").set_alarm(sim::seconds(5), "tick");
  ASSERT_EQ(bed.server().alarms().pending_count(), 1u);

  bed.server().kill_app(owner);
  ASSERT_FALSE(bed.server().pid_of(owner).valid());
  // Android keeps alarms across process death, and an RTC_WAKEUP fire
  // wakes the dead owner back up; the re-spawn must enter the lifecycle
  // cleanly and leave accounting consistent.
  bed.run_for(sim::seconds(10));
  EXPECT_EQ(bed.server().alarms().fired_total(), 1u);
  EXPECT_TRUE(bed.server().pid_of(owner).valid());
  expect_invariants_hold(bed);
}

TEST(FailureInjectionTest, ChainMemberDeathMidAttack) {
  // The Fig 7/9c chain: malware binds A's service, A's service start
  // chains into B. Killing the middle-of-chain host mid-attack must close
  // B's windows, keep A alive, and leave accounting consistent.
  Testbed bed;
  DemoAppSpec tail = victim_spec();
  tail.package = "com.example.tail";
  tail.wakelock_bug = false;
  DemoAppSpec middle = victim_spec();
  middle.wakelock_bug = false;
  // The chain hop: being driven makes the middle start the tail's root
  // activity (Fig 7's B -> C edge).
  middle.chain_on_service =
      framework::ComponentRef{tail.package, DemoApp::kRootActivity};
  bed.install<DemoApp>(middle);
  bed.install<DemoApp>(tail);
  BinderMalware* malware =
      bed.install<BinderMalware>(middle.package, DemoApp::kService);
  bed.start();
  bed.context_of(BinderMalware::kPackage);
  bed.context_of(middle.package)
      .start_service(Intent::explicit_for(middle.package, DemoApp::kService));
  bed.run_for(sim::seconds(2));
  ASSERT_TRUE(malware->bound());
  ASSERT_TRUE(bed.server().pid_of(bed.uid_of(tail.package)).valid());
  ASSERT_TRUE(bed.eandroid()->tracker().has_window(
      core::WindowKind::kActivity, bed.uid_of(middle.package),
      bed.uid_of(tail.package)));

  bed.server().kill_app(bed.uid_of(tail.package));
  EXPECT_FALSE(bed.eandroid()->tracker().has_window(
      core::WindowKind::kActivity, bed.uid_of(middle.package),
      bed.uid_of(tail.package)));
  EXPECT_TRUE(
      bed.server().services().running(middle.package, DemoApp::kService));
  bed.run_for(sim::seconds(2));
  expect_invariants_hold(bed);
}

TEST(FailureInjectionTest, BatteryExhaustionInsideCollateralWindow) {
  Testbed bed;
  WakelockMalware* malware = bed.install<WakelockMalware>();
  bed.start();
  bed.context_of(WakelockMalware::kPackage);
  malware->attack();
  bed.run_for(sim::minutes(1));
  ASSERT_GE(bed.eandroid()->tracker().open_count(), 1u);

  // The cell collapses mid-attack. The window stays open (the attack is
  // still running), accounting stays conserved, and the battery never
  // goes negative.
  bed.server().battery().deplete_to(0.0, bed.sim().now());
  bed.run_for(sim::minutes(1));
  EXPECT_GE(bed.eandroid()->tracker().open_count(), 1u);
  EXPECT_TRUE(bed.server().battery().empty());
  expect_invariants_hold(bed);
}

TEST(FailureInjectionTest, CrashRestartCannotLaunderCollateral) {
  // A started service whose host crashes and is restarted by the
  // framework keeps charging its collateral to the ORIGINAL starter.
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  DemoAppSpec victim = victim_spec();
  victim.wakelock_bug = false;
  bed.install<DemoApp>(victim);
  bed.start();
  const kernelsim::Uid driver = bed.uid_of("com.example.message");
  const kernelsim::Uid driven = bed.uid_of(victim.package);
  bed.context_of("com.example.message")
      .start_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.run_for(sim::seconds(5));
  ASSERT_TRUE(bed.eandroid()->tracker().has_window(core::WindowKind::kService,
                                                   driver, driven));
  const double before = bed.eandroid()->engine().collateral_mj(driver);
  ASSERT_GT(before, 0.0);

  bed.server().kill_app(driven);
  bed.run_for(sim::seconds(10));  // restart fires after the backoff

  // The restarted window is driven by the same account, and collateral
  // kept accruing there across the crash boundary.
  EXPECT_TRUE(bed.eandroid()->tracker().has_window(core::WindowKind::kService,
                                                   driver, driven));
  EXPECT_GT(bed.eandroid()->engine().collateral_mj(driver), before);
  expect_invariants_hold(bed);
}

TEST(FailureInjectionTest, RestartAfterKillWorks) {
  Testbed bed;
  bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.server().kill_app(bed.uid_of("com.example.victim"));
  // Relaunch spawns a fresh process and the app behaves normally.
  bed.server().user_launch("com.example.victim");
  EXPECT_EQ(bed.server().activities().foreground_uid(),
            bed.uid_of("com.example.victim"));
  EXPECT_EQ(bed.server().power().held_count(), 1u);  // fresh wakelock
}

}  // namespace
}  // namespace eandroid::apps
