// Property-based tests: invariants that must hold under randomized event
// interleavings (a fuzz harness over the whole device model, driven by
// the reusable RandomWorkload generator).
#include <gtest/gtest.h>

#include <tuple>

#include "apps/testbed.h"
#include "apps/workload.h"

namespace eandroid::apps {
namespace {

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, InvariantsHoldUnderRandomInterleavings) {
  Testbed bed({.seed = GetParam()});
  RandomWorkload workload(bed, {.seed = GetParam()});
  bed.start();
  workload.run(120);
  bed.run_for(sim::seconds(1));

  auto* ea = bed.eandroid();
  ASSERT_NE(ea, nullptr);

  // 1. Energy conservation: every profiler's grand total equals the
  //    battery drain, and E-Android's neutral rows are included.
  const double drained = bed.server().battery().consumed_total_mj();
  EXPECT_NEAR(bed.battery_stats().total_mj(), drained, 1e-3);
  EXPECT_NEAR(bed.power_tutor().total_mj(), drained, 1e-3);
  EXPECT_NEAR(ea->engine().true_total_mj(), drained, 1e-3);

  // 2. No negative attribution anywhere.
  const core::EAView view = ea->view();
  for (const auto& row : view.rows) {
    EXPECT_GE(row.original_mj, 0.0) << row.label;
    EXPECT_GE(row.collateral_mj, 0.0) << row.label;
    for (const auto& item : row.inventory) {
      EXPECT_GE(item.energy_mj, 0.0) << row.label << " <- " << item.label;
    }
  }
  EXPECT_GE(view.screen_row_mj, -1e-9);
  EXPECT_GE(view.system_row_mj, 0.0);

  // 3. Window bookkeeping: opened = closed + still-open.
  EXPECT_EQ(ea->tracker().opened_total(),
            ea->tracker().closed_total() + ea->tracker().open_count());

  // 4. No single collateral charge can exceed the total battery drain.
  for (const auto& row : view.rows) {
    for (const auto& item : row.inventory) {
      EXPECT_LE(item.energy_mj, drained + 1e-6);
    }
  }

  // 5. Stock profilers and E-Android agree on each app's direct energy.
  for (const auto& row : view.rows) {
    if (!row.uid.valid()) continue;
    EXPECT_NEAR(row.original_mj, bed.battery_stats().app_energy_mj(row.uid),
                1e-6)
        << row.label;
  }

  // 6. Window state machines never leave a window on a dead driven app.
  for (const auto& [id, window] : ea->tracker().open_windows()) {
    if (window.kind == core::WindowKind::kActivity ||
        window.kind == core::WindowKind::kInterrupt ||
        window.kind == core::WindowKind::kService) {
      EXPECT_TRUE(bed.server().pid_of(window.driven).valid())
          << "open window on dead uid " << window.driven.value;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(DeterminismTest, SameSeedSameTrace) {
  auto run = [](std::uint64_t seed) {
    Testbed bed({.seed = seed});
    RandomWorkload workload(bed, {.seed = seed});
    bed.start();
    workload.run(60);
    bed.run_for(sim::seconds(1));
    return std::make_tuple(bed.server().battery().drained_mj(),
                           bed.eandroid()->tracker().opened_total(),
                           bed.eandroid()->tracker().closed_total(),
                           bed.server().events().published_count());
  };
  EXPECT_EQ(run(1234), run(1234));
  EXPECT_NE(std::get<0>(run(1)), std::get<0>(run(2)));
}

TEST(PropertyTest, LmkEnabledKeepsInvariants) {
  // Same fuzz with memory pressure active: kills mid-window must not
  // break conservation or window bookkeeping.
  Testbed bed({.seed = 77});
  bed.server().lmk().set_budget_mb(400);
  RandomWorkload workload(bed, {.seed = 77});
  bed.start();
  workload.run(150);
  bed.run_for(sim::seconds(1));
  const double drained = bed.server().battery().consumed_total_mj();
  EXPECT_NEAR(bed.eandroid()->engine().true_total_mj(), drained, 1e-3);
  EXPECT_EQ(bed.eandroid()->tracker().opened_total(),
            bed.eandroid()->tracker().closed_total() +
                bed.eandroid()->tracker().open_count());
}

}  // namespace
}  // namespace eandroid::apps
