// Golden-digest equivalence between the allocation-free hot path and the
// baseline path (fresh buffers every tick, no window-structure caches).
// The two shapes share every summation and its order, so full-precision
// digests of whole runs must match bit-for-bit — any divergence means an
// optimization changed observable results, not just cost.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "apps/chaos.h"
#include "apps/scenarios.h"
#include "apps/testbed.h"

namespace eandroid::apps {
namespace {

void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g|", v);
  out += buf;
}

void append_view(std::string& out, const energy::BatteryView& view) {
  for (const auto& row : view.rows) {
    out += row.label;
    out += ':';
    append_f64(out, row.energy_mj);
    append_f64(out, row.percent);
  }
  append_f64(out, view.total_mj);
}

/// Full-precision rendering of everything a scenario reports per uid.
std::string scenario_digest(const ScenarioResult& result) {
  std::string out = result.name + ";";
  append_view(out, result.android_view);
  append_view(out, result.powertutor_view);
  for (const auto& row : result.ea_view.rows) {
    out += row.label;
    out += ':';
    append_f64(out, row.original_mj);
    append_f64(out, row.collateral_mj);
    append_f64(out, row.total_mj);
    append_f64(out, row.percent);
    for (const auto& item : row.inventory) {
      out += item.label;
      append_f64(out, item.energy_mj);
    }
  }
  append_f64(out, result.ea_view.screen_row_mj);
  append_f64(out, result.ea_view.system_row_mj);
  append_f64(out, result.ea_view.true_total_mj);
  append_f64(out, result.battery_drained_mj);
  return out;
}

using ScenarioFn = ScenarioResult (*)(std::uint64_t);

TEST(HotpathEquivalenceTest, Fig09ScenariosMatchBitForBit) {
  const std::pair<const char*, ScenarioFn> scenarios[] = {
      {"scene1", [](std::uint64_t s) { return run_scene1(s); }},
      {"scene2", [](std::uint64_t s) { return run_scene2(s); }},
      {"attack1", [](std::uint64_t s) { return run_attack1(s); }},
      {"attack2", [](std::uint64_t s) { return run_attack2(s); }},
      {"attack3", [](std::uint64_t s) { return run_attack3(s); }},
      {"attack4", [](std::uint64_t s) { return run_attack4(s); }},
      {"attack5", [](std::uint64_t s) { return run_attack5(s); }},
      {"attack6", [](std::uint64_t s) { return run_attack6(s); }},
      {"chain", [](std::uint64_t s) { return run_chain_attack(s); }},
      {"multi", [](std::uint64_t s) { return run_multi_attack(s); }},
  };
  for (const auto& [name, fn] : scenarios) {
    const std::string hot = scenario_digest(fn(1));
    std::string baseline;
    {
      ScopedBaselinePath force_baseline;
      baseline = scenario_digest(fn(1));
    }
    EXPECT_EQ(hot, baseline) << name;
  }
}

TEST(HotpathEquivalenceTest, ChaosDigestsMatchAcross32Seeds) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    ChaosOptions options;
    options.seed = seed;
    options.workload_steps = 40;
    options.fault_count = 6;
    options.horizon = sim::seconds(30);
    const std::string hot = run_chaos(options).digest();
    std::string baseline;
    {
      ScopedBaselinePath force_baseline;
      baseline = run_chaos(options).digest();
    }
    EXPECT_EQ(hot, baseline) << "seed " << seed;
  }
}

}  // namespace
}  // namespace eandroid::apps
