// Golden-digest equivalence between the allocation-free hot path and the
// baseline path (fresh buffers every tick, no window-structure caches).
// The two shapes share every summation and its order, so full-precision
// digests of whole runs must match bit-for-bit — any divergence means an
// optimization changed observable results, not just cost.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "apps/chaos.h"
#include "apps/demo_app.h"
#include "apps/scenarios.h"
#include "apps/testbed.h"
#include "fleet/fleet.h"

namespace eandroid::apps {
namespace {

void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g|", v);
  out += buf;
}

void append_view(std::string& out, const energy::BatteryView& view) {
  for (const auto& row : view.rows) {
    out += row.label;
    out += ':';
    append_f64(out, row.energy_mj);
    append_f64(out, row.percent);
  }
  append_f64(out, view.total_mj);
}

/// Full-precision rendering of everything a scenario reports per uid.
std::string scenario_digest(const ScenarioResult& result) {
  std::string out = result.name + ";";
  append_view(out, result.android_view);
  append_view(out, result.powertutor_view);
  for (const auto& row : result.ea_view.rows) {
    out += row.label;
    out += ':';
    append_f64(out, row.original_mj);
    append_f64(out, row.collateral_mj);
    append_f64(out, row.total_mj);
    append_f64(out, row.percent);
    for (const auto& item : row.inventory) {
      out += item.label;
      append_f64(out, item.energy_mj);
    }
  }
  append_f64(out, result.ea_view.screen_row_mj);
  append_f64(out, result.ea_view.system_row_mj);
  append_f64(out, result.ea_view.true_total_mj);
  append_f64(out, result.battery_drained_mj);
  return out;
}

/// Every scenario entry point now threads TestbedOptions through, so the
/// baseline leg is an explicit argument instead of the old
/// ScopedBaselinePath process-global.
using ScenarioFn = ScenarioResult (*)(std::uint64_t, const TestbedOptions&);

TEST(HotpathEquivalenceTest, Fig09ScenariosMatchBitForBit) {
  const std::pair<const char*, ScenarioFn> scenarios[] = {
      {"scene1", run_scene1},
      {"scene2", run_scene2},
      {"attack1", run_attack1},
      {"attack2", run_attack2},
      {"attack3", run_attack3},
      {"attack4", run_attack4},
      {"attack5",
       [](std::uint64_t s, const TestbedOptions& base) {
         return run_attack5(s, 255, base);
       }},
      {"attack6",
       [](std::uint64_t s, const TestbedOptions& base) {
         return run_attack6(s, false, base);
       }},
      {"chain", run_chain_attack},
      {"multi", run_multi_attack},
  };
  for (const auto& [name, fn] : scenarios) {
    const std::string hot = scenario_digest(fn(1, {.hot_path = true}));
    const std::string baseline = scenario_digest(fn(1, {.hot_path = false}));
    EXPECT_EQ(hot, baseline) << name;
  }
}

TEST(HotpathEquivalenceTest, FleetCoresAndMeteringPathsMatchBitForBit) {
  // The two metering paths (hot / baseline buffers) crossed with the two
  // fleet cores (per-device heaps / shared wheel + slab) are four routes
  // to the same observable run; all four digest sets must agree.
  const auto digests = [](bool hot, fleet::FleetCore core) {
    auto plan = std::make_shared<fleet::InstallPlan>();
    DemoAppSpec sender;
    sender.package = "com.fleet.weather";
    sender.foreground_cpu = 0.02;
    plan->add_app<DemoApp>(sender);
    DemoAppSpec victim;
    victim.package = "com.fleet.syncclient";
    victim.push_endpoint = true;
    plan->add_app<DemoApp>(victim);

    fleet::FleetOptions options;
    options.device_count = 6;
    options.shards = 2;
    options.epoch = sim::seconds(2);
    options.install_plan = std::move(plan);
    options.hot_path = hot;
    options.core = core;
    fleet::Fleet f(std::move(options));
    fleet::PushCampaign campaign;
    campaign.sender_package = "com.fleet.weather";
    campaign.target_package = "com.fleet.syncclient";
    campaign.start = sim::TimePoint{} + sim::seconds(2) + sim::millis(1);
    campaign.period = sim::millis(750);
    campaign.pushes_per_device = 6;
    campaign.device_stagger = sim::millis(13);
    f.broker().add_campaign(campaign);
    f.start();
    f.run_for(sim::seconds(8));
    f.finish();
    return f.energy_digests();
  };
  const auto reference = digests(true, fleet::FleetCore::kBaseline);
  EXPECT_EQ(digests(false, fleet::FleetCore::kBaseline), reference);
  EXPECT_EQ(digests(true, fleet::FleetCore::kBatched), reference);
  EXPECT_EQ(digests(false, fleet::FleetCore::kBatched), reference);
}

TEST(HotpathEquivalenceTest, ChaosDigestsMatchAcross32Seeds) {
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    ChaosOptions options;
    options.seed = seed;
    options.workload_steps = 40;
    options.fault_count = 6;
    options.horizon = sim::seconds(30);
    options.hot_path = true;
    const std::string hot = run_chaos(options).digest();
    options.hot_path = false;
    const std::string baseline = run_chaos(options).digest();
    EXPECT_EQ(hot, baseline) << "seed " << seed;
  }
}

}  // namespace
}  // namespace eandroid::apps
