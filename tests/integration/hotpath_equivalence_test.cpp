// Golden-digest equivalence across every metering shape: the
// allocation-free hot path vs the baseline path (fresh buffers every
// tick, no window-structure caches), crossed with the fused
// MeteringPipeline vs the virtual sink chain, crossed (for fleets) with
// the per-device vs batched core. Every shape shares every summation and
// its order, so full-precision digests — and, for the fleet matrix,
// trace bytes — must match bit-for-bit; any divergence means an
// optimization changed observable results, not just cost.
//
// The matrix is deliberately split into small TESTs — ctest shards —
// so `ctest -j` spreads the legs across cores, one diverging leg names
// itself in the failing shard, and each shard sits under an explicit
// TIMEOUT (see tests/CMakeLists.txt: the `equivalence` label).
#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <utility>

#include "apps/chaos.h"
#include "apps/demo_app.h"
#include "apps/scenarios.h"
#include "apps/testbed.h"
#include "fleet/fleet.h"

namespace eandroid::apps {
namespace {

void append_f64(std::string& out, double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g|", v);
  out += buf;
}

void append_view(std::string& out, const energy::BatteryView& view) {
  for (const auto& row : view.rows) {
    out += row.label;
    out += ':';
    append_f64(out, row.energy_mj);
    append_f64(out, row.percent);
  }
  append_f64(out, view.total_mj);
}

/// Full-precision rendering of everything a scenario reports per uid.
std::string scenario_digest(const ScenarioResult& result) {
  std::string out = result.name + ";";
  append_view(out, result.android_view);
  append_view(out, result.powertutor_view);
  for (const auto& row : result.ea_view.rows) {
    out += row.label;
    out += ':';
    append_f64(out, row.original_mj);
    append_f64(out, row.collateral_mj);
    append_f64(out, row.total_mj);
    append_f64(out, row.percent);
    for (const auto& item : row.inventory) {
      out += item.label;
      append_f64(out, item.energy_mj);
    }
  }
  append_f64(out, result.ea_view.screen_row_mj);
  append_f64(out, result.ea_view.system_row_mj);
  append_f64(out, result.ea_view.true_total_mj);
  append_f64(out, result.battery_drained_mj);
  return out;
}

/// Every scenario entry point now threads TestbedOptions through, so the
/// baseline leg is an explicit argument instead of the old
/// ScopedBaselinePath process-global.
using ScenarioFn = ScenarioResult (*)(std::uint64_t, const TestbedOptions&);
using NamedScenario = std::pair<const char*, ScenarioFn>;

/// One Fig09 shard: the hot×fused 2x2 for each named scenario — the
/// fused hot path (production shape) is the reference; the other three
/// legs must reproduce it bit-for-bit.
template <std::size_t N>
void check_fig09_2x2(const NamedScenario (&scenarios)[N]) {
  for (const auto& [name, fn] : scenarios) {
    const std::string reference = scenario_digest(
        fn(1, {.hot_path = true, .fused_metering = true}));
    EXPECT_EQ(scenario_digest(fn(1, {.hot_path = true,
                                     .fused_metering = false})),
              reference)
        << name << " hot/virtual";
    EXPECT_EQ(scenario_digest(fn(1, {.hot_path = false,
                                     .fused_metering = true})),
              reference)
        << name << " baseline/fused";
    EXPECT_EQ(scenario_digest(fn(1, {.hot_path = false,
                                     .fused_metering = false})),
              reference)
        << name << " baseline/virtual";
  }
}

TEST(HotpathEquivalenceTest, Fig09ScenesMatchBitForBit) {
  const NamedScenario scenarios[] = {
      {"scene1", run_scene1},
      {"scene2", run_scene2},
      {"chain", run_chain_attack},
  };
  check_fig09_2x2(scenarios);
}

TEST(HotpathEquivalenceTest, Fig09EarlyAttacksMatchBitForBit) {
  const NamedScenario scenarios[] = {
      {"attack1", run_attack1},
      {"attack2", run_attack2},
      {"attack3", run_attack3},
      {"attack4", run_attack4},
  };
  check_fig09_2x2(scenarios);
}

TEST(HotpathEquivalenceTest, Fig09LateAttacksMatchBitForBit) {
  const NamedScenario scenarios[] = {
      {"attack5",
       [](std::uint64_t s, const TestbedOptions& base) {
         return run_attack5(s, 255, base);
       }},
      {"attack6",
       [](std::uint64_t s, const TestbedOptions& base) {
         return run_attack6(s, false, base);
       }},
      {"multi", run_multi_attack},
  };
  check_fig09_2x2(scenarios);
}

// --- The fleet 8-way matrix ------------------------------------------------
// The two metering paths (hot / baseline buffers) crossed with the two
// fleet cores (per-device heaps / shared wheel + slab) crossed with the
// two fold routes (fused pipeline / virtual sink chain) are EIGHT routes
// to the same observable run; all eight digest sets AND trace byte
// streams must agree. Each shard below rebuilds the reference leg
// (hot × per-device × fused) and checks its slice of the other seven.

struct Observed {
  std::vector<std::string> digests;
  std::vector<std::string> traces;
  bool operator==(const Observed&) const = default;
};

Observed observe_fleet(bool hot, fleet::FleetCore core, bool fused) {
  auto plan = std::make_shared<fleet::InstallPlan>();
  DemoAppSpec sender;
  sender.package = "com.fleet.weather";
  sender.foreground_cpu = 0.02;
  plan->add_app<DemoApp>(sender);
  DemoAppSpec victim;
  victim.package = "com.fleet.syncclient";
  victim.push_endpoint = true;
  plan->add_app<DemoApp>(victim);

  fleet::FleetOptions options;
  options.device_count = 6;
  options.shards = 2;
  options.epoch = sim::seconds(2);
  options.install_plan = std::move(plan);
  options.hot_path = hot;
  options.fused_metering = fused;
  options.core = core;
  options.obs.trace = true;
  const int device_count = options.device_count;
  fleet::Fleet f(std::move(options));
  fleet::PushCampaign campaign;
  campaign.sender_package = "com.fleet.weather";
  campaign.target_package = "com.fleet.syncclient";
  campaign.start = sim::TimePoint{} + sim::seconds(2) + sim::millis(1);
  campaign.period = sim::millis(750);
  campaign.pushes_per_device = 6;
  campaign.device_stagger = sim::millis(13);
  f.broker().add_campaign(campaign);
  f.start();
  f.run_for(sim::seconds(8));
  f.finish();
  Observed out;
  out.digests = f.energy_digests();
  for (int i = 0; i < device_count; ++i) {
    out.traces.push_back(f.device(i).trace_text());
  }
  return out;
}

void check_fleet_legs(
    const std::vector<std::pair<bool, bool>>& hot_fused_legs,
    fleet::FleetCore core) {
  const Observed reference =
      observe_fleet(true, fleet::FleetCore::kBaseline, true);
  ASSERT_FALSE(reference.traces.front().empty());
  for (const auto& [hot, fused] : hot_fused_legs) {
    const Observed leg = observe_fleet(hot, core, fused);
    EXPECT_EQ(leg.digests, reference.digests)
        << "hot=" << hot
        << " batched=" << (core == fleet::FleetCore::kBatched)
        << " fused=" << fused;
    EXPECT_EQ(leg.traces, reference.traces)
        << "hot=" << hot
        << " batched=" << (core == fleet::FleetCore::kBatched)
        << " fused=" << fused;
  }
}

TEST(HotpathEquivalenceTest, FleetPerDeviceCoreLegsMatchBitForBit) {
  // The three non-reference legs on the per-device-heap core.
  check_fleet_legs({{true, false}, {false, true}, {false, false}},
                   fleet::FleetCore::kBaseline);
}

TEST(HotpathEquivalenceTest, FleetBatchedHotLegsMatchBitForBit) {
  check_fleet_legs({{true, true}, {true, false}},
                   fleet::FleetCore::kBatched);
}

TEST(HotpathEquivalenceTest, FleetBatchedBaselineLegsMatchBitForBit) {
  check_fleet_legs({{false, true}, {false, false}},
                   fleet::FleetCore::kBatched);
}

// --- Chaos seeds, sharded 8 per TEST ---------------------------------------

void check_chaos_seeds(std::uint64_t first, std::uint64_t last) {
  for (std::uint64_t seed = first; seed <= last; ++seed) {
    ChaosOptions options;
    options.seed = seed;
    options.workload_steps = 40;
    options.fault_count = 6;
    options.horizon = sim::seconds(30);
    options.hot_path = true;
    options.fused_metering = true;
    const std::string reference = run_chaos(options).digest();
    options.fused_metering = false;
    EXPECT_EQ(run_chaos(options).digest(), reference)
        << "seed " << seed << " hot/virtual";
    options.hot_path = false;
    EXPECT_EQ(run_chaos(options).digest(), reference)
        << "seed " << seed << " baseline/virtual";
    options.fused_metering = true;
    EXPECT_EQ(run_chaos(options).digest(), reference)
        << "seed " << seed << " baseline/fused";
  }
}

TEST(HotpathEquivalenceTest, ChaosDigestsMatchSeeds1To8) {
  check_chaos_seeds(1, 8);
}
TEST(HotpathEquivalenceTest, ChaosDigestsMatchSeeds9To16) {
  check_chaos_seeds(9, 16);
}
TEST(HotpathEquivalenceTest, ChaosDigestsMatchSeeds17To24) {
  check_chaos_seeds(17, 24);
}
TEST(HotpathEquivalenceTest, ChaosDigestsMatchSeeds25To32) {
  check_chaos_seeds(25, 32);
}

}  // namespace
}  // namespace eandroid::apps
