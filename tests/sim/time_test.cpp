#include "sim/time.h"

#include <gtest/gtest.h>

namespace eandroid::sim {
namespace {

TEST(TimeTest, DurationConstructorsAgree) {
  EXPECT_EQ(millis(1).micros(), 1000);
  EXPECT_EQ(seconds(1).micros(), 1'000'000);
  EXPECT_EQ(minutes(1), seconds(60));
  EXPECT_EQ(hours(1), minutes(60));
  EXPECT_EQ(micros(5).micros(), 5);
}

TEST(TimeTest, DurationArithmetic) {
  EXPECT_EQ(seconds(1) + millis(500), millis(1500));
  EXPECT_EQ(seconds(2) - millis(500), millis(1500));
  EXPECT_EQ(millis(10) * 3, millis(30));
  EXPECT_EQ(seconds(1) / 4, millis(250));
  Duration d = seconds(1);
  d += seconds(2);
  EXPECT_EQ(d, seconds(3));
  d -= millis(500);
  EXPECT_EQ(d, millis(2500));
}

TEST(TimeTest, DurationComparisons) {
  EXPECT_LT(millis(999), seconds(1));
  EXPECT_GT(seconds(1), millis(999));
  EXPECT_LE(seconds(1), millis(1000));
  EXPECT_EQ(Duration(), Duration(0));
}

TEST(TimeTest, DurationConversions) {
  EXPECT_DOUBLE_EQ(seconds(90).seconds(), 90.0);
  EXPECT_DOUBLE_EQ(hours(2).hours(), 2.0);
  EXPECT_EQ(millis(1234).millis(), 1234);
}

TEST(TimeTest, TimePointArithmetic) {
  const TimePoint t0;
  const TimePoint t1 = t0 + seconds(5);
  EXPECT_EQ(t1 - t0, seconds(5));
  EXPECT_EQ(t1 - seconds(5), t0);
  EXPECT_LT(t0, t1);
}

TEST(TimeTest, NegativeDurations) {
  const TimePoint a(1000);
  const TimePoint b(3000);
  EXPECT_EQ((a - b).micros(), -2000);
  EXPECT_LT(a - b, Duration(0));
}

TEST(TimeTest, FormatTime) {
  EXPECT_EQ(format_time(TimePoint()), "0:00:00.000");
  EXPECT_EQ(format_time(TimePoint() + millis(1)), "0:00:00.001");
  EXPECT_EQ(format_time(TimePoint() + hours(3) + minutes(25) + seconds(7) +
                        millis(89)),
            "3:25:07.089");
}

}  // namespace
}  // namespace eandroid::sim
