#include "sim/simulator.h"

#include <gtest/gtest.h>

#include <vector>

namespace eandroid::sim {
namespace {

TEST(SimulatorTest, ClockStartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.now(), TimePoint());
}

TEST(SimulatorTest, RunForAdvancesClockEvenWithoutEvents) {
  Simulator sim;
  sim.run_for(seconds(10));
  EXPECT_EQ(sim.now(), TimePoint() + seconds(10));
}

TEST(SimulatorTest, ScheduledEventRunsAtItsTime) {
  Simulator sim;
  TimePoint fired;
  sim.schedule(millis(500), [&] { fired = sim.now(); });
  sim.run_for(seconds(1));
  EXPECT_EQ(fired, TimePoint() + millis(500));
}

TEST(SimulatorTest, EventsBeyondHorizonDoNotRun) {
  Simulator sim;
  bool ran = false;
  sim.schedule(seconds(2), [&] { ran = true; });
  sim.run_for(seconds(1));
  EXPECT_FALSE(ran);
  sim.run_for(seconds(1));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, EventExactlyAtHorizonRuns) {
  Simulator sim;
  bool ran = false;
  sim.schedule(seconds(1), [&] { ran = true; });
  sim.run_for(seconds(1));
  EXPECT_TRUE(ran);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  std::vector<std::int64_t> at;
  sim.schedule(millis(100), [&] {
    at.push_back(sim.now().millis());
    sim.schedule(millis(100), [&] { at.push_back(sim.now().millis()); });
  });
  sim.run_for(seconds(1));
  EXPECT_EQ(at, (std::vector<std::int64_t>{100, 200}));
}

TEST(SimulatorTest, CancelStopsScheduledEvent) {
  Simulator sim;
  bool ran = false;
  const EventHandle h = sim.schedule(millis(10), [&] { ran = true; });
  EXPECT_TRUE(sim.cancel(h));
  sim.run_for(seconds(1));
  EXPECT_FALSE(ran);
}

TEST(SimulatorTest, ScheduleAtInThePastIsACheckedError) {
  Simulator sim;
  sim.run_for(seconds(5));
  EXPECT_THROW(sim.schedule_at(TimePoint() + seconds(1), [] {}),
               CheckFailure);
  // The current instant is not "the past": it fires on the next run.
  TimePoint fired;
  sim.schedule_at(sim.now(), [&] { fired = sim.now(); });
  sim.run_for(seconds(1));
  EXPECT_EQ(fired, TimePoint() + seconds(5));
}

TEST(SimulatorTest, ScheduleAtOrNowClampsPastTimes) {
  Simulator sim;
  sim.run_for(seconds(5));
  TimePoint fired;
  sim.schedule_at_or_now(TimePoint() + seconds(1),
                         [&] { fired = sim.now(); });
  sim.run_for(seconds(1));
  EXPECT_EQ(fired, TimePoint() + seconds(5));
}

TEST(SimulatorTest, EveryRepeatsUntilStopped) {
  Simulator sim;
  int count = 0;
  auto stop = sim.every(millis(100), [&] { ++count; });
  sim.run_for(millis(450));
  EXPECT_EQ(count, 4);
  stop();
  sim.run_for(seconds(1));
  EXPECT_EQ(count, 4);
}

TEST(SimulatorTest, EveryTasksInterleaveDeterministically) {
  Simulator sim;
  std::vector<int> order;
  sim.every(millis(100), [&] { order.push_back(1); });
  sim.every(millis(100), [&] { order.push_back(2); });
  sim.run_for(millis(200));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 1, 2}));
}

TEST(SimulatorTest, RunAllDrainsQueue) {
  Simulator sim;
  int count = 0;
  sim.schedule(seconds(100), [&] { ++count; });
  sim.schedule(seconds(200), [&] { ++count; });
  sim.run_all();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(sim.now(), TimePoint() + seconds(200));
}

TEST(SimulatorTest, PendingEventsCountsQueue) {
  Simulator sim;
  sim.schedule(seconds(1), [] {});
  sim.schedule(seconds(2), [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
}

}  // namespace
}  // namespace eandroid::sim
