// TimeWheel differentials: a wheel-bound Simulator must be observably
// indistinguishable from a plain one — same fire instants, same order,
// same cancel/periodic/exception semantics — because the batched fleet
// core's bit-identity claim rests on exactly this equivalence. Each test
// runs one schedule through both cores and compares the (instant, tag)
// fire logs, then adds wheel-specific assertions (cascades, overflow,
// cross-device interleaving) where the plain simulator has no analogue.
#include "sim/time_wheel.h"

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <stdexcept>
#include <utility>
#include <vector>

#include "sim/check.h"
#include "sim/simulator.h"

namespace eandroid::sim {
namespace {

/// The observable order of a run: (fire instant in µs, caller's tag).
using FireLog = std::vector<std::pair<std::int64_t, int>>;

/// Plants the same schedule into a plain and a wheel-bound simulator,
/// advances both through the same stop list, and requires identical
/// logs. Returns the (shared) log for content assertions.
FireLog differential(
    const std::function<void(Simulator&, FireLog&)>& plant,
    const std::vector<TimePoint>& stops) {
  FireLog plain_log;
  {
    Simulator plain(1);
    plant(plain, plain_log);
    for (const TimePoint stop : stops) plain.run_until(stop);
  }
  FireLog wheel_log;
  {
    TimeWheel wheel;
    Simulator sim(1, &wheel);
    plant(sim, wheel_log);
    for (const TimePoint stop : stops) wheel.run_until(stop);
  }
  EXPECT_EQ(wheel_log, plain_log);
  return plain_log;
}

/// Logging callback factory bound to one simulator + log.
std::function<void()> tag(Simulator& sim, FireLog& log, int t) {
  return [&sim, &log, t] { log.emplace_back(sim.now().micros(), t); };
}

TEST(TimeWheelTest, OneShotOrderAndSameInstantTiesMatchPlainCore) {
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        sim.schedule(millis(5), tag(sim, out, 1));
        sim.schedule(millis(2), tag(sim, out, 2));
        sim.schedule(millis(2), tag(sim, out, 3));  // tie: insertion order
        sim.schedule_at(TimePoint(2'000), tag(sim, out, 4));  // third tie
        sim.schedule(micros(2'500), tag(sim, out, 5));  // same wheel tick
        sim.schedule(millis(9), tag(sim, out, 6));
      },
      {TimePoint(3'000), TimePoint(20'000)});
  const FireLog expect = {{2'000, 2}, {2'000, 3}, {2'000, 4},
                          {2'500, 5}, {5'000, 1}, {9'000, 6}};
  EXPECT_EQ(log, expect);
}

TEST(TimeWheelTest, EventsAtTheStopInstantStillRun) {
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        sim.schedule(millis(10), tag(sim, out, 1));
        sim.schedule(micros(10'001), tag(sim, out, 2));  // just past the stop
      },
      {TimePoint(10'000)});
  const FireLog expect = {{10'000, 1}};
  EXPECT_EQ(log, expect);
}

TEST(TimeWheelTest, NestedSameInstantSchedulingFiresInTheSamePass) {
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        sim.schedule(millis(1), [&sim, &out] {
          out.emplace_back(sim.now().micros(), 1);
          // Same instant, scheduled during firing: joins this pass.
          sim.schedule(Duration(0), [&sim, &out] {
            out.emplace_back(sim.now().micros(), 2);
            sim.schedule(Duration(0), tag(sim, out, 3));  // nested again
          });
          // A hair later, same wheel tick.
          sim.schedule(micros(200), tag(sim, out, 4));
        });
        sim.schedule(millis(2), tag(sim, out, 5));
      },
      {TimePoint(5'000)});
  const FireLog expect = {
      {1'000, 1}, {1'000, 2}, {1'000, 3}, {1'200, 4}, {2'000, 5}};
  EXPECT_EQ(log, expect);
}

TEST(TimeWheelTest, PeriodicTaskMatchesIncludingExternalCancel) {
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        auto stop = std::make_shared<std::function<void()>>();
        *stop = sim.every(millis(3), tag(sim, out, 1));
        // Cancel from a one-shot at 10 ms: fires at 3, 6, 9 and no more.
        sim.schedule(millis(10), [stop] { (*stop)(); });
      },
      {TimePoint(7'000), TimePoint(30'000)});
  const FireLog expect = {{3'000, 1}, {6'000, 1}, {9'000, 1}};
  EXPECT_EQ(log, expect);
}

TEST(TimeWheelTest, PeriodicTaskCancellingItselfFromInsideStops) {
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        auto count = std::make_shared<int>(0);
        auto stop = std::make_shared<std::function<void()>>();
        *stop = sim.every(millis(2), [&sim, &out, count, stop] {
          out.emplace_back(sim.now().micros(), ++*count);
          if (*count == 3) (*stop)();
        });
      },
      {TimePoint(20'000)});
  const FireLog expect = {{2'000, 1}, {4'000, 2}, {6'000, 3}};
  EXPECT_EQ(log, expect);
}

TEST(TimeWheelTest, OneShotSelfCancelIsANoOp) {
  // The entry is consumed before the callback runs, so cancelling the
  // handle from inside reports false on both cores.
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        auto h = std::make_shared<EventHandle>();
        *h = sim.schedule(millis(1), [&sim, &out, h] {
          out.emplace_back(sim.now().micros(), sim.cancel(*h) ? 1 : 0);
        });
      },
      {TimePoint(5'000)});
  const FireLog expect = {{1'000, 0}};
  EXPECT_EQ(log, expect);
}

TEST(TimeWheelTest, MassCancelMatchesAndCompactionKeepsSurvivors) {
  // 200 one-shots, 190 cancelled — enough dead entries to trip the
  // wheel's compact() — and the 10 survivors still fire in order.
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        std::vector<EventHandle> handles;
        for (int i = 0; i < 200; ++i) {
          handles.push_back(sim.schedule(millis(1 + i), tag(sim, out, i)));
        }
        for (int i = 0; i < 200; ++i) {
          if (i % 20 != 0) {
            EXPECT_TRUE(sim.cancel(handles[i]));
          }
        }
        EXPECT_FALSE(sim.cancel(handles[1]));  // double cancel
        EXPECT_EQ(sim.pending_events(), 10u);
        EXPECT_EQ(sim.next_event_time(), TimePoint(1'000));
      },
      {TimePoint(300'000)});
  ASSERT_EQ(log.size(), 10u);
  for (int k = 0; k < 10; ++k) {
    EXPECT_EQ(log[k], (std::pair<std::int64_t, int>{
                          1'000 * (1 + 20 * k), 20 * k}));
  }
}

TEST(TimeWheelTest, PendingCountAndNextTimeAgreeWithPlainCore) {
  Simulator plain(1);
  TimeWheel wheel;
  Simulator bound(1, &wheel);
  for (Simulator* sim : {&plain, &bound}) {
    sim->schedule(millis(7), [] {});
    sim->schedule(seconds(2), [] {});
    sim->schedule(hours(1), [] {});
  }
  EXPECT_EQ(bound.pending_events(), plain.pending_events());
  EXPECT_EQ(bound.next_event_time(), plain.next_event_time());
  plain.run_until(TimePoint(millis(10).micros()));
  wheel.run_until(TimePoint(millis(10).micros()));
  EXPECT_EQ(bound.pending_events(), plain.pending_events());
  EXPECT_EQ(bound.next_event_time(), plain.next_event_time());
  EXPECT_EQ(bound.now(), plain.now());
  EXPECT_EQ(bound.events_dispatched(), plain.events_dispatched());
}

TEST(TimeWheelTest, CrossDeviceOrderIsAttachOrderAndProjectionsMatch) {
  // Two simulators on one wheel: at equal instants the earlier-attached
  // device fires first, and each device's own projection is exactly what
  // it would have seen running alone.
  struct Fire {
    std::int64_t us;
    int dev;
    int tag;
    bool operator==(const Fire&) const = default;
  };
  std::vector<Fire> fires;
  const auto plant = [&fires](Simulator& sim, int dev) {
    const auto at = [&fires, &sim, dev](Duration d, int t) {
      sim.schedule(d, [&fires, &sim, dev, t] {
        fires.push_back({sim.now().micros(), dev, t});
      });
    };
    if (dev == 0) {
      at(millis(1), 1);
      at(millis(2), 2);
      at(millis(2), 3);
      at(millis(5), 4);
    } else {
      at(millis(2), 1);
      at(millis(2), 2);
      at(millis(3), 3);
    }
  };

  TimeWheel wheel;
  Simulator a(1, &wheel);
  Simulator b(2, &wheel);
  plant(a, 0);
  plant(b, 1);
  wheel.run_until(TimePoint(10'000));
  EXPECT_EQ(wheel.device_count(), 2u);

  // Cross-device total order at the 2 ms tie: all of device 0 first.
  const std::vector<Fire> expect = {{1'000, 0, 1}, {2'000, 0, 2},
                                    {2'000, 0, 3}, {2'000, 1, 1},
                                    {2'000, 1, 2}, {3'000, 1, 3},
                                    {5'000, 0, 4}};
  EXPECT_EQ(fires, expect);

  // Per-device projection == standalone run of the same schedule.
  for (int dev : {0, 1}) {
    std::vector<Fire> solo_fires;
    {
      Simulator solo(dev == 0 ? 1 : 2);
      const auto solo_plant = [&solo_fires, &solo, dev](Duration d, int t) {
        solo.schedule(d, [&solo_fires, &solo, dev, t] {
          solo_fires.push_back({solo.now().micros(), dev, t});
        });
      };
      if (dev == 0) {
        solo_plant(millis(1), 1);
        solo_plant(millis(2), 2);
        solo_plant(millis(2), 3);
        solo_plant(millis(5), 4);
      } else {
        solo_plant(millis(2), 1);
        solo_plant(millis(2), 2);
        solo_plant(millis(3), 3);
      }
      solo.run_until(TimePoint(10'000));
    }
    std::vector<Fire> projected;
    for (const Fire& f : fires) {
      if (f.dev == dev) projected.push_back(f);
    }
    EXPECT_EQ(projected, solo_fires) << "device " << dev;
  }
}

TEST(TimeWheelTest, FarEventsCascadeDownTheLevelsOnTime) {
  // One event per wheel level: 100 ms (L0), 10 s (L1), 1 h (L2),
  // 6 h (L3). All must fire at their exact instants after cascading.
  TimeWheel wheel;
  Simulator sim(1, &wheel);
  FireLog log;
  sim.schedule(millis(100), tag(sim, log, 0));
  sim.schedule(seconds(10), tag(sim, log, 1));
  sim.schedule(hours(1), tag(sim, log, 2));
  sim.schedule(hours(6), tag(sim, log, 3));
  wheel.run_until(TimePoint(hours(7).micros()));
  const FireLog expect = {{millis(100).micros(), 0},
                          {seconds(10).micros(), 1},
                          {hours(1).micros(), 2},
                          {hours(6).micros(), 3}};
  EXPECT_EQ(log, expect);
  EXPECT_GT(wheel.cascades(), 0u);
  EXPECT_EQ(wheel.pushed(), 4u);
  EXPECT_EQ(wheel.live(), 0u);
  EXPECT_EQ(sim.now(), TimePoint(hours(7).micros()));
}

TEST(TimeWheelTest, EventsBeyondTheHorizonOverflowAndRefile) {
  // ~52 simulated days is past the wheel's 2^32-tick L3 horizon: the
  // entry sits in the overflow list, is refiled as the horizon
  // approaches, and still fires at its exact instant.
  TimeWheel wheel;
  Simulator sim(1, &wheel);
  FireLog log;
  const Duration far = hours(52 * 24);
  sim.schedule(far, tag(sim, log, 1));
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.next_event_time(), TimePoint(far.micros()));
  wheel.run_until(TimePoint((far + seconds(1)).micros()));
  const FireLog expect = {{far.micros(), 1}};
  EXPECT_EQ(log, expect);
  EXPECT_GT(wheel.cascades(), 0u);
}

TEST(TimeWheelTest, RunLoopsOnAWheelBoundSimulatorAreCheckedErrors) {
  TimeWheel wheel;
  Simulator sim(1, &wheel);
  sim.schedule(millis(1), [] {});
  EXPECT_THROW(sim.run_until(TimePoint(5'000)), CheckFailure);
  EXPECT_THROW(sim.run_all(), CheckFailure);
  // The wheel still owns a working run loop afterwards.
  wheel.run_until(TimePoint(5'000));
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(TimeWheelTest, ThrowingCallbackConsumesTheEventAndWheelRecovers) {
  const auto plant = [](Simulator& sim, FireLog& out) {
    sim.schedule(millis(1), [] { throw std::runtime_error("boom"); });
    sim.schedule(millis(2), tag(sim, out, 1));
  };
  FireLog plain_log;
  Simulator plain(1);
  plant(plain, plain_log);
  EXPECT_THROW(plain.run_until(TimePoint(10'000)), std::runtime_error);
  plain.run_until(TimePoint(10'000));

  FireLog wheel_log;
  TimeWheel wheel;
  Simulator bound(1, &wheel);
  plant(bound, wheel_log);
  EXPECT_THROW(wheel.run_until(TimePoint(10'000)), std::runtime_error);
  wheel.run_until(TimePoint(10'000));

  EXPECT_EQ(wheel_log, plain_log);
  const FireLog expect = {{2'000, 1}};
  EXPECT_EQ(wheel_log, expect);
  EXPECT_EQ(bound.pending_events(), plain.pending_events());
  EXPECT_EQ(bound.now(), plain.now());
}

TEST(TimeWheelTest, SameTickReentryAcrossRunsParksAndResumes) {
  // Two run_until stops inside the SAME wheel tick: events between the
  // stops must wait for the second call, exactly like the plain core.
  const FireLog log = differential(
      [](Simulator& sim, FireLog& out) {
        sim.schedule(micros(100), tag(sim, out, 1));
        sim.schedule(micros(300), tag(sim, out, 2));
        sim.schedule(micros(900), tag(sim, out, 3));
      },
      {TimePoint(300), TimePoint(500), TimePoint(2'000)});
  const FireLog expect = {{100, 1}, {300, 2}, {900, 3}};
  EXPECT_EQ(log, expect);
}

}  // namespace
}  // namespace eandroid::sim
