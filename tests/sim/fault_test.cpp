// FaultPlan/FaultInjector: plans are pure functions of (seed, horizon,
// count); the injector fires bound actions at the scheduled instants and
// counts unbound kinds as skipped.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "sim/fault.h"
#include "sim/simulator.h"

namespace eandroid::sim {
namespace {

TEST(FaultPlanTest, GenerateIsDeterministic) {
  const FaultPlan a = FaultPlan::generate(42, seconds(120), 16);
  const FaultPlan b = FaultPlan::generate(42, seconds(120), 16);
  ASSERT_EQ(a.faults.size(), 16u);
  EXPECT_EQ(a.describe(), b.describe());
}

TEST(FaultPlanTest, FaultsSortedWithinHorizon) {
  const FaultPlan plan = FaultPlan::generate(7, seconds(60), 32);
  TimePoint prev;
  for (const FaultSpec& fault : plan.faults) {
    EXPECT_GT(fault.at.micros(), 0);
    EXPECT_LE(fault.at.micros(), seconds(60).micros());
    EXPECT_GE(fault.at.micros(), prev.micros());
    prev = fault.at;
  }
}

TEST(FaultPlanTest, DifferentSeedsProduceDifferentPlans) {
  EXPECT_NE(FaultPlan::generate(1, seconds(60), 12).describe(),
            FaultPlan::generate(2, seconds(60), 12).describe());
}

TEST(FaultInjectorTest, FiresBoundActionsAtScheduledInstants) {
  Simulator sim;
  std::vector<std::pair<std::int64_t, std::uint64_t>> kills;
  std::vector<std::pair<std::int64_t, std::int64_t>> delays;

  FaultActions actions;
  actions.kill_app = [&](std::uint64_t target) {
    kills.emplace_back(sim.now().micros(), target);
  };
  actions.delay_alarms = [&](Duration by) {
    delays.emplace_back(sim.now().micros(), by.micros());
  };

  FaultPlan plan;
  plan.faults.push_back(
      FaultSpec{FaultKind::kKillApp, TimePoint{} + millis(10), 3, 1});
  plan.faults.push_back(
      FaultSpec{FaultKind::kDelayAlarms, TimePoint{} + millis(20), 0, 250});

  FaultInjector injector(sim, actions);
  injector.arm(plan);
  sim.run_for(millis(50));

  ASSERT_EQ(kills.size(), 1u);
  EXPECT_EQ(kills[0].first, millis(10).micros());
  EXPECT_EQ(kills[0].second, 3u);
  ASSERT_EQ(delays.size(), 1u);
  EXPECT_EQ(delays[0].first, millis(20).micros());
  EXPECT_EQ(delays[0].second, millis(250).micros());

  EXPECT_EQ(injector.injected_total(), 2u);
  EXPECT_EQ(injector.skipped_total(), 0u);
  EXPECT_EQ(injector.injected_by_kind()[static_cast<int>(FaultKind::kKillApp)],
            1u);
}

TEST(FaultInjectorTest, UnboundActionsCountAsSkipped) {
  Simulator sim;
  const FaultPlan plan = FaultPlan::generate(5, seconds(10), 10);
  FaultInjector injector(sim, FaultActions{});
  injector.arm(plan);
  sim.run_for(seconds(11));
  EXPECT_EQ(injector.injected_total(), 0u);
  EXPECT_EQ(injector.skipped_total(), 10u);
}

}  // namespace
}  // namespace eandroid::sim
