#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <unordered_set>
#include <vector>

namespace eandroid::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint(300), [&] { order.push_back(3); });
  q.push(TimePoint(100), [&] { order.push_back(1); });
  q.push(TimePoint(200), [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameInstantIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(TimePoint(42), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(TimePoint(500), [] {});
  q.push(TimePoint(50), [] {});
  EXPECT_EQ(q.next_time(), TimePoint(50));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventHandle h = q.push(TimePoint(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const EventHandle h = q.push(TimePoint(10), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, CancelInvalidHandleFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
  EXPECT_FALSE(q.cancel(EventHandle{999}));
}

TEST(EventQueueTest, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> order;
  const EventHandle first = q.push(TimePoint(1), [&] { order.push_back(1); });
  q.push(TimePoint(2), [&] { order.push_back(2); });
  q.cancel(first);
  EXPECT_EQ(q.next_time(), TimePoint(2));
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  // Regression: cancelling a handle whose event already ran must not
  // disturb the bookkeeping of the events still scheduled.
  EventQueue q;
  const EventHandle fired = q.push(TimePoint(1), [] {});
  q.push(TimePoint(2), [] {});
  q.pop()();  // fires `fired`
  EXPECT_FALSE(q.cancel(fired));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop()();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SelfCancelDuringCallbackIsHarmless) {
  EventQueue q;
  EventHandle self{};
  bool later_ran = false;
  self = q.push(TimePoint(1), [&] { q.cancel(self); });
  q.push(TimePoint(2), [&] { later_ran = true; });
  while (!q.empty()) q.pop()();
  EXPECT_TRUE(later_ran);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventHandle a = q.push(TimePoint(1), [] {});
  q.push(TimePoint(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

// Stress: a deterministic pseudo-random interleaving of push / cancel /
// pop / fire (with in-place periodic reschedule) against a brute-force
// reference model. Cancels are frequent enough to drive the heap across
// its compaction boundary many times, so this catches id aliasing,
// FIFO-at-the-same-instant breaks, and compaction losing or duplicating
// entries.
TEST(EventQueueTest, StressInterleavedOpsAcrossCompaction) {
  EventQueue q;
  std::uint64_t rng = 0x9e3779b97f4a7c15ull;
  auto next_rand = [&rng] {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };

  struct ModelEvent {
    std::uint64_t token;
    TimePoint when;
    Duration period{0};  // 0 = one-shot
    EventHandle handle;
  };
  // Scheduling order; the stable minimum over `when` is the FIFO-correct
  // next event. Rescheduled periodic entries move to the back, matching
  // the queue's fresh sequence number per firing.
  std::vector<ModelEvent> live;
  std::unordered_set<std::uint64_t> seen_ids;
  std::vector<std::uint64_t> fired;
  std::uint64_t next_token = 1;
  TimePoint now{0};

  auto model_earliest = [&live] {
    std::size_t best = 0;
    for (std::size_t i = 1; i < live.size(); ++i) {
      if (live[i].when < live[best].when) best = i;
    }
    return best;
  };
  auto consume_front = [&](bool via_pop) {
    ASSERT_FALSE(live.empty());
    const std::size_t best = model_earliest();
    const ModelEvent expect = live[best];
    live.erase(live.begin() + best);
    now = expect.when;
    ASSERT_EQ(q.next_time(), expect.when);
    const std::size_t before = fired.size();
    if (via_pop) {
      q.pop()();  // removes even a periodic entry for good
    } else {
      q.fire_front();
      if (expect.period > Duration(0)) {
        ModelEvent again = expect;
        again.when = again.when + again.period;
        live.push_back(again);
      }
    }
    ASSERT_EQ(fired.size(), before + 1);
    EXPECT_EQ(fired.back(), expect.token);
  };

  for (int op = 0; op < 6000; ++op) {
    const std::uint64_t r = next_rand();
    const std::uint64_t arg = r >> 8;
    switch (r % 8) {
      case 0:
      case 1:
      case 2: {  // one-shot push; small spread forces equal instants
        const std::uint64_t token = next_token++;
        const TimePoint when =
            now + Duration(static_cast<std::int64_t>(arg % 40));
        const EventHandle h =
            q.push(when, [&fired, token] { fired.push_back(token); });
        ASSERT_TRUE(seen_ids.insert(h.id).second) << "event id reused";
        live.push_back({token, when, Duration(0), h});
        break;
      }
      case 3: {  // periodic push
        const std::uint64_t token = next_token++;
        const TimePoint when =
            now + Duration(static_cast<std::int64_t>(arg % 40));
        const Duration period = Duration(static_cast<std::int64_t>(1 + arg % 7));
        const EventHandle h = q.push_periodic(
            when, period, [&fired, token] { fired.push_back(token); });
        ASSERT_TRUE(seen_ids.insert(h.id).second) << "event id reused";
        live.push_back({token, when, period, h});
        break;
      }
      case 4:
      case 5: {  // cancel a random live entry (fuels compaction)
        if (live.empty()) break;
        const std::size_t victim = arg % live.size();
        EXPECT_TRUE(q.cancel(live[victim].handle));
        live.erase(live.begin() + victim);
        break;
      }
      case 6: {  // fire the earliest; periodic entries reschedule in place
        if (!live.empty()) consume_front(/*via_pop=*/false);
        break;
      }
      case 7: {  // pop() consumes the earliest entry outright
        if (!live.empty()) consume_front(/*via_pop=*/true);
        break;
      }
    }
    ASSERT_EQ(q.size(), live.size());
    ASSERT_EQ(q.empty(), live.empty());
  }

  // Drain what is left: cancel the periodics, fire the one-shots dry.
  for (std::size_t i = live.size(); i-- > 0;) {
    if (live[i].period > Duration(0)) {
      EXPECT_TRUE(q.cancel(live[i].handle));
      live.erase(live.begin() + i);
    }
  }
  while (!live.empty()) consume_front(/*via_pop=*/false);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace eandroid::sim
