#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace eandroid::sim {
namespace {

TEST(EventQueueTest, StartsEmpty) {
  EventQueue q;
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.size(), 0u);
}

TEST(EventQueueTest, PopsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.push(TimePoint(300), [&] { order.push_back(3); });
  q.push(TimePoint(100), [&] { order.push_back(1); });
  q.push(TimePoint(200), [&] { order.push_back(2); });
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueueTest, SameInstantIsFifo) {
  EventQueue q;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.push(TimePoint(42), [&order, i] { order.push_back(i); });
  }
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, NextTimeReportsEarliest) {
  EventQueue q;
  q.push(TimePoint(500), [] {});
  q.push(TimePoint(50), [] {});
  EXPECT_EQ(q.next_time(), TimePoint(50));
}

TEST(EventQueueTest, CancelPreventsExecution) {
  EventQueue q;
  bool ran = false;
  const EventHandle h = q.push(TimePoint(10), [&] { ran = true; });
  EXPECT_TRUE(q.cancel(h));
  EXPECT_TRUE(q.empty());
  EXPECT_FALSE(ran);
}

TEST(EventQueueTest, CancelTwiceFails) {
  EventQueue q;
  const EventHandle h = q.push(TimePoint(10), [] {});
  EXPECT_TRUE(q.cancel(h));
  EXPECT_FALSE(q.cancel(h));
}

TEST(EventQueueTest, CancelInvalidHandleFails) {
  EventQueue q;
  EXPECT_FALSE(q.cancel(EventHandle{}));
  EXPECT_FALSE(q.cancel(EventHandle{999}));
}

TEST(EventQueueTest, CancelledHeadIsSkipped) {
  EventQueue q;
  std::vector<int> order;
  const EventHandle first = q.push(TimePoint(1), [&] { order.push_back(1); });
  q.push(TimePoint(2), [&] { order.push_back(2); });
  q.cancel(first);
  EXPECT_EQ(q.next_time(), TimePoint(2));
  while (!q.empty()) q.pop()();
  EXPECT_EQ(order, (std::vector<int>{2}));
}

TEST(EventQueueTest, CancelAfterFireIsHarmless) {
  // Regression: cancelling a handle whose event already ran must not
  // disturb the bookkeeping of the events still scheduled.
  EventQueue q;
  const EventHandle fired = q.push(TimePoint(1), [] {});
  q.push(TimePoint(2), [] {});
  q.pop()();  // fires `fired`
  EXPECT_FALSE(q.cancel(fired));
  EXPECT_EQ(q.size(), 1u);
  EXPECT_FALSE(q.empty());
  q.pop()();
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, SelfCancelDuringCallbackIsHarmless) {
  EventQueue q;
  EventHandle self{};
  bool later_ran = false;
  self = q.push(TimePoint(1), [&] { q.cancel(self); });
  q.push(TimePoint(2), [&] { later_ran = true; });
  while (!q.empty()) q.pop()();
  EXPECT_TRUE(later_ran);
}

TEST(EventQueueTest, SizeTracksLiveEvents) {
  EventQueue q;
  const EventHandle a = q.push(TimePoint(1), [] {});
  q.push(TimePoint(2), [] {});
  EXPECT_EQ(q.size(), 2u);
  q.cancel(a);
  EXPECT_EQ(q.size(), 1u);
  q.pop();
  EXPECT_EQ(q.size(), 0u);
}

}  // namespace
}  // namespace eandroid::sim
