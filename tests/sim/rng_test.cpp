#include "sim/rng.h"

#include <gtest/gtest.h>

namespace eandroid::sim {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(5.0, 9.0);
    EXPECT_GE(u, 5.0);
    EXPECT_LT(u, 9.0);
  }
}

TEST(RngTest, BelowStaysInRange) {
  Rng rng(3);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BelowCoversAllResidues) {
  Rng rng(3);
  bool seen[7] = {};
  for (int i = 0; i < 1000; ++i) seen[rng.below(7)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(RngTest, ChanceRateApproximatesP) {
  Rng rng(11);
  int hits = 0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.3)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.3, 0.01);
}

TEST(RngTest, MeanOfUniformIsHalf) {
  Rng rng(5);
  double sum = 0.0;
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / trials, 0.5, 0.005);
}

}  // namespace
}  // namespace eandroid::sim
