#include "sim/log.h"

#include <gtest/gtest.h>

namespace eandroid::sim {
namespace {

class LogTest : public ::testing::Test {
 protected:
  ~LogTest() override { Logger::instance().set_level(LogLevel::kOff); }
};

TEST_F(LogTest, OffByDefaultStateRestorable) {
  Logger::instance().set_level(LogLevel::kOff);
  EXPECT_EQ(Logger::instance().level(), LogLevel::kOff);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kError));
}

TEST_F(LogTest, LevelGatingIsMonotone) {
  Logger::instance().set_level(LogLevel::kInfo);
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kTrace));
  EXPECT_FALSE(Logger::instance().enabled(LogLevel::kDebug));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kInfo));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kWarn));
  EXPECT_TRUE(Logger::instance().enabled(LogLevel::kError));
}

TEST_F(LogTest, MacroCompilesAndSkipsWhenDisabled) {
  Logger::instance().set_level(LogLevel::kOff);
  int evaluations = 0;
  auto expensive = [&evaluations] {
    ++evaluations;
    return std::string("payload");
  };
  EA_LOG(kDebug, TimePoint(), "test") << expensive();
  // The stream body is not evaluated when the level is off.
  EXPECT_EQ(evaluations, 0);
  Logger::instance().set_level(LogLevel::kDebug);
  EA_LOG(kDebug, TimePoint(), "test") << expensive();
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LogTest, WriteRespectsLevelAtCallTime) {
  // write() itself re-checks; calling it below the level is a no-op
  // (no crash, no output assertion possible here — behavioural check).
  Logger::instance().set_level(LogLevel::kError);
  Logger::instance().write(LogLevel::kDebug, TimePoint(), "tag", "message");
  SUCCEED();
}

}  // namespace
}  // namespace eandroid::sim
