// fleet.core.* metrics: the batched core's health counters — wheel
// occupancy and cascade counts, arena high-water marks, slab footprint —
// must surface through Fleet::scheduler_metrics() on batched runs and
// stay absent on baseline runs (where none of those structures exist).
// Metrics are independent of EANDROID_TRACE, so this suite runs in every
// build flavor.
#include <gtest/gtest.h>

#include <memory>
#include <utility>

#include "apps/demo_app.h"
#include "fleet/fleet.h"

namespace eandroid::fleet {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;

std::shared_ptr<const InstallPlan> plan() {
  auto p = std::make_shared<InstallPlan>();
  DemoAppSpec sender;
  sender.package = "com.fleet.weather";
  sender.foreground_cpu = 0.02;
  p->add_app<DemoApp>(sender);
  DemoAppSpec victim;
  victim.package = "com.fleet.syncclient";
  victim.push_endpoint = true;
  p->add_app<DemoApp>(victim);
  return p;
}

FleetOptions options_for(FleetCore core) {
  FleetOptions options;
  options.device_count = 6;
  options.shards = 2;
  options.epoch = sim::seconds(2);
  options.install_plan = plan();
  options.core = core;
  return options;
}

PushCampaign campaign() {
  PushCampaign c;
  c.sender_package = "com.fleet.weather";
  c.target_package = "com.fleet.syncclient";
  c.start = sim::TimePoint{} + sim::seconds(2) + sim::millis(1);
  c.period = sim::millis(750);
  c.pushes_per_device = 8;
  c.device_stagger = sim::millis(13);
  return c;
}

obs::MetricsSnapshot run_and_snapshot(FleetCore core) {
  Fleet fleet(options_for(core));
  fleet.broker().add_campaign(campaign());
  fleet.start();
  // Long enough that wheel entries climb past level 0 (the 750 ms push
  // cadence alone outruns the 262 ms L0 span) and cascade back down.
  fleet.run_for(sim::seconds(20));
  fleet.finish();
  return fleet.scheduler_metrics();
}

TEST(FleetCoreMetricsTest, BatchedRunsExposeWheelSlabAndArenaCounters) {
  const obs::MetricsSnapshot metrics = run_and_snapshot(FleetCore::kBatched);

  const auto* cascades = metrics.find("fleet.core.wheel_cascades");
  ASSERT_NE(cascades, nullptr);
  EXPECT_GT(cascades->count, 0u);

  const auto* occupancy = metrics.find("fleet.core.wheel_occupancy_peak");
  ASSERT_NE(occupancy, nullptr);
  // Each of the 6 devices keeps at least its sampler timer live, split
  // over 2 shard-group wheels: the busier wheel holds ≥ 3 events.
  EXPECT_GE(occupancy->count, 3u);

  const auto* arena = metrics.find("fleet.core.arena_high_water_bytes");
  ASSERT_NE(arena, nullptr);
  EXPECT_GT(arena->count, 0u);

  const auto* slab = metrics.find("fleet.core.slab_bytes_per_device");
  ASSERT_NE(slab, nullptr);
  // At least one app row of five 8-byte cells per device.
  EXPECT_GE(slab->count, 40u);
}

TEST(FleetCoreMetricsTest, BaselineRunsCarryNoCoreCounters) {
  const obs::MetricsSnapshot metrics = run_and_snapshot(FleetCore::kBaseline);
  EXPECT_EQ(metrics.find("fleet.core.wheel_cascades"), nullptr);
  EXPECT_EQ(metrics.find("fleet.core.wheel_occupancy_peak"), nullptr);
  EXPECT_EQ(metrics.find("fleet.core.arena_high_water_bytes"), nullptr);
  EXPECT_EQ(metrics.find("fleet.core.slab_bytes_per_device"), nullptr);
}

}  // namespace
}  // namespace eandroid::fleet
