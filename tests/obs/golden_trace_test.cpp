// Golden-trace regression suite.
//
// Each case replays a canonical workload with tracing on and compares
// the deterministic text export byte-for-byte against a checked-in
// golden in tests/obs/golden/*.trace. A drifting trace is a change to
// the simulator's observable event history — sometimes intended, always
// worth a diff in review.
//
// When a golden legitimately changes, regenerate with either of:
//
//   build/tests/golden_trace_tests --update-golden
//   EANDROID_UPDATE_GOLDEN=1 ctest -R GoldenTrace
//
// which rewrites tests/obs/golden/ in the source tree; commit the new
// files with the change that moved them. On failure the suite writes
// the actual bytes, a line-level diff, and the Perfetto-loadable Chrome
// JSON form into obs_artifacts/ (uploaded by CI).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "apps/chaos.h"
#include "apps/scenarios.h"
#include "apps/testbed.h"

namespace eandroid::obs {

// Set by main(); lives outside the anonymous namespace so main can see it.
bool g_update_golden = false;

namespace {

std::string golden_path(const std::string& name) {
  return std::string(EANDROID_GOLDEN_DIR) + "/" + name + ".trace";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  *out = buf.str();
  return true;
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  ASSERT_TRUE(out.good()) << "cannot write " << path;
  out << bytes;
}

std::vector<std::string> lines_of(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

/// Line-level diff, capped: `-` lines come from the golden, `+` lines
/// from the actual trace.
std::string line_diff(const std::vector<std::string>& expected,
                      const std::vector<std::string>& actual,
                      int max_hunks = 40) {
  std::ostringstream out;
  const std::size_t n = std::max(expected.size(), actual.size());
  int hunks = 0;
  for (std::size_t i = 0; i < n && hunks < max_hunks; ++i) {
    const std::string* e = i < expected.size() ? &expected[i] : nullptr;
    const std::string* a = i < actual.size() ? &actual[i] : nullptr;
    if (e != nullptr && a != nullptr && *e == *a) continue;
    ++hunks;
    out << "line " << (i + 1) << ":\n";
    if (e != nullptr) out << "  -" << *e << "\n";
    if (a != nullptr) out << "  +" << *a << "\n";
  }
  if (hunks == max_hunks) out << "... (diff truncated)\n";
  return out.str();
}

/// Compares `actual` against the named golden; in update mode rewrites
/// the golden instead. `chrome_json` (may be empty) is saved as a CI
/// artifact alongside the diff when the comparison fails.
void check_golden(const std::string& name, const std::string& actual,
                  const std::string& chrome_json) {
  ASSERT_FALSE(actual.empty()) << name << ": tracing produced no bytes";
  const std::string path = golden_path(name);
  if (g_update_golden) {
    write_file(path, actual);
    return;
  }
  std::string expected;
  if (!read_file(path, &expected)) {
    FAIL() << "missing golden " << path
           << " — regenerate with --update-golden";
  }
  if (expected == actual) return;

  const std::vector<std::string> expected_lines = lines_of(expected);
  const std::vector<std::string> actual_lines = lines_of(actual);
  const std::string diff = line_diff(expected_lines, actual_lines);

  std::error_code ec;
  std::filesystem::create_directories("obs_artifacts", ec);
  write_file("obs_artifacts/" + name + ".actual.trace", actual);
  write_file("obs_artifacts/" + name + ".diff.txt", diff);
  if (!chrome_json.empty()) {
    write_file("obs_artifacts/" + name + ".chrome.json", chrome_json);
  }

  FAIL() << name << " drifted from " << path << " (" << expected_lines.size()
         << " golden lines, " << actual_lines.size()
         << " actual); full diff + Chrome JSON in obs_artifacts/.\n"
         << diff;
}

apps::TestbedOptions traced_base() {
  apps::TestbedOptions base;
  base.obs.trace = true;
  base.obs.trace_capacity = 1u << 18;
  return base;
}

TEST(GoldenTraceTest, Scene1MessageFilmsVideo) {
  const apps::ScenarioResult result = apps::run_scene1(1, traced_base());
  check_golden("scene1", result.trace_text, result.trace_json);
}

TEST(GoldenTraceTest, Attack3BindService) {
  const apps::ScenarioResult result = apps::run_attack3(1, traced_base());
  check_golden("attack3", result.trace_text, result.trace_json);
}

TEST(GoldenTraceTest, Attack6WakelockLeak) {
  const apps::ScenarioResult result =
      apps::run_attack6(1, /*release_lock=*/false, traced_base());
  check_golden("attack6", result.trace_text, result.trace_json);
}

TEST(GoldenTraceTest, ChaosSeed7) {
  apps::ChaosOptions options;
  options.seed = 7;
  options.workload_steps = 20;
  options.fault_count = 8;
  options.horizon = sim::seconds(20);
  options.obs.trace = true;
  options.obs.trace_capacity = 1u << 18;
  const apps::ChaosResult result = apps::run_chaos(options);
  check_golden("chaos_seed7", result.trace_text, /*chrome_json=*/"");
}

}  // namespace
}  // namespace eandroid::obs

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  for (int i = 1; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--update-golden") {
      eandroid::obs::g_update_golden = true;
    }
  }
  if (const char* env = std::getenv("EANDROID_UPDATE_GOLDEN")) {
    if (env[0] == '1') eandroid::obs::g_update_golden = true;
  }
  return RUN_ALL_TESTS();
}
