// Differential contracts for the observability layer:
//   * trace-derived energy re-summation — summing the nanojoule args of
//     the sampler's `energy.slice` trace events reproduces the battery's
//     consumed total within 1 mJ across 64 random chaos seeds (the
//     trace is an independent record the meters can be validated
//     against, in the spirit of arxiv 1701.07095);
//   * trace bytes and metrics snapshots are bitwise identical across
//     fleet shard counts {1, 4, 8} and across the hot-vs-baseline
//     metering paths — observability output is a pure function of the
//     simulated history, never of how it was executed;
//   * tracing a chaos run moves no bit of its digest.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>
#include <vector>

#include "apps/chaos.h"
#include "apps/demo_app.h"
#include "apps/testbed.h"
#include "fleet/aggregate.h"
#include "fleet/fleet.h"
#include "obs/export.h"

namespace eandroid::obs {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;

// --- Trace re-summation vs the battery's ground truth -------------------

struct ParsedTrace {
  std::uint64_t dropped = 0;
  double slice_sum_mj = 0.0;
};

/// Parses text_trace() output: the header's dropped count and the sum of
/// every `energy.slice` arg (nanojoules → mJ).
ParsedTrace parse_trace(const std::string& text) {
  ParsedTrace parsed;
  std::istringstream in(text);
  std::string line;
  std::int64_t slice_nj_sum = 0;
  while (std::getline(in, line)) {
    if (line.rfind("# trace", 0) == 0) {
      const std::size_t at = line.find("dropped=");
      if (at != std::string::npos) {
        parsed.dropped = std::strtoull(line.c_str() + at + 8, nullptr, 10);
      }
      continue;
    }
    if (line.find(" energy energy.slice ") == std::string::npos) continue;
    const std::size_t arg_at = line.find("arg=");
    EXPECT_NE(arg_at, std::string::npos) << line;
    if (arg_at == std::string::npos) continue;
    slice_nj_sum += std::strtoll(line.c_str() + arg_at + 4, nullptr, 10);
  }
  parsed.slice_sum_mj = static_cast<double>(slice_nj_sum) * 1e-6;
  return parsed;
}

apps::ChaosOptions chaos_options(std::uint64_t seed, bool traced) {
  apps::ChaosOptions options;
  options.seed = seed;
  options.workload_steps = 40;
  options.fault_count = 8;
  options.horizon = sim::seconds(30);
  if (traced) {
    options.obs.trace = true;
    // Big enough that no chaos seed wraps the ring: a wrapped trace
    // would silently lose slices and the re-summation below with it.
    options.obs.trace_capacity = 1u << 20;
  }
  return options;
}

TEST(TraceResummationTest, SliceArgsReproduceBatteryTotalAcross64Seeds) {
  for (std::uint64_t seed = 1; seed <= 64; ++seed) {
    const apps::ChaosResult result = run_chaos(chaos_options(seed, true));
    ASSERT_FALSE(result.trace_text.empty()) << "seed " << seed;
    const ParsedTrace parsed = parse_trace(result.trace_text);
    ASSERT_EQ(parsed.dropped, 0u)
        << "seed " << seed << ": ring wrapped; raise trace_capacity";
    // llround error is ≤ 0.5 nJ per slice — the 1 mJ budget is five
    // orders of magnitude of headroom even over thousands of slices.
    EXPECT_NEAR(parsed.slice_sum_mj, result.consumed_mj, 1.0)
        << "seed " << seed;
  }
}

TEST(TraceResummationTest, TracingMovesNoBitOfTheChaosDigest) {
  for (std::uint64_t seed : {3u, 17u, 42u}) {
    const apps::ChaosResult plain = run_chaos(chaos_options(seed, false));
    const apps::ChaosResult traced = run_chaos(chaos_options(seed, true));
    EXPECT_EQ(plain.digest(), traced.digest()) << "seed " << seed;
    EXPECT_TRUE(plain.trace_text.empty());
    EXPECT_FALSE(traced.trace_text.empty());
  }
}

// --- Shard invariance ----------------------------------------------------

/// The fleet_test campaign cast, traced.
std::shared_ptr<const fleet::InstallPlan> campaign_plan() {
  auto plan = std::make_shared<fleet::InstallPlan>();
  DemoAppSpec sender;
  sender.package = "com.fleet.weather";
  sender.foreground_cpu = 0.02;
  plan->add_app<DemoApp>(sender);
  DemoAppSpec victim;
  victim.package = "com.fleet.syncclient";
  victim.push_endpoint = true;
  plan->add_app<DemoApp>(victim);
  return plan;
}

struct FleetObsOutput {
  std::vector<std::string> traces;   // text_trace per device
  std::vector<std::string> metrics;  // metrics render per device
  std::string report_digest;         // includes the merged metrics table
};

FleetObsOutput run_traced_fleet(int shards) {
  fleet::FleetOptions options;
  options.device_count = 12;
  options.shards = shards;
  options.install_plan = campaign_plan();
  options.epoch = sim::seconds(2);
  options.obs.trace = true;
  fleet::PushCampaign campaign;
  campaign.sender_package = "com.fleet.weather";
  campaign.target_package = "com.fleet.syncclient";
  campaign.start = sim::TimePoint{} + sim::seconds(2);
  campaign.period = sim::millis(750);
  campaign.pushes_per_device = 6;
  campaign.device_stagger = sim::millis(13);

  fleet::Fleet fleet(options);
  fleet.broker().add_campaign(campaign);
  fleet.start();
  fleet.run_for(sim::seconds(10));
  fleet.finish();

  FleetObsOutput out;
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    out.traces.push_back(fleet.device(i).trace_text());
    out.metrics.push_back(fleet.device(i).metrics_snapshot().render());
  }
  out.report_digest = aggregate_fleet(fleet).digest();
  return out;
}

TEST(ShardInvarianceTest, TraceBytesAndMetricsIdenticalAcrossShardCounts) {
  const FleetObsOutput one = run_traced_fleet(1);
  const FleetObsOutput four = run_traced_fleet(4);
  const FleetObsOutput eight = run_traced_fleet(8);
  ASSERT_EQ(one.traces.size(), 12u);
  EXPECT_FALSE(one.traces[0].empty());
  EXPECT_EQ(one.traces, four.traces);
  EXPECT_EQ(one.traces, eight.traces);
  EXPECT_EQ(one.metrics, four.metrics);
  EXPECT_EQ(one.metrics, eight.metrics);
  // The fleet report digest folds the merged metrics table, so this one
  // comparison covers the population-level render too.
  EXPECT_EQ(one.report_digest, four.report_digest);
  EXPECT_EQ(one.report_digest, eight.report_digest);
}

// --- Hot-vs-baseline invariance -----------------------------------------

TEST(HotBaselineTest, TraceBytesAndMetricsIdenticalAcrossMeteringPaths) {
  const auto run = [](bool hot_path) {
    apps::TestbedOptions options;
    options.seed = 9;
    options.hot_path = hot_path;
    options.obs.trace = true;
    options.obs.trace_capacity = 1u << 18;
    apps::Testbed bed(options);
    bed.install<DemoApp>(apps::victim_spec());
    bed.start();
    bed.server().user_launch(apps::victim_spec().package);
    bed.sim().run_for(sim::seconds(10));
    bed.server().simulate_incoming_call(sim::seconds(5));
    bed.run_for(sim::seconds(25));
    return std::make_pair(bed.trace_text(),
                          bed.metrics_snapshot().render());
  };
  const auto hot = run(true);
  const auto baseline = run(false);
  EXPECT_FALSE(hot.first.empty());
  EXPECT_EQ(hot.first, baseline.first);
  EXPECT_EQ(hot.second, baseline.second);
}

}  // namespace
}  // namespace eandroid::obs
