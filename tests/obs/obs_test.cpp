// Unit contracts for the observability layer (src/obs/):
//   * TraceRecorder ring semantics — overwrite, dropped accounting,
//     intern stability, clear, the recording master switch;
//   * MetricsRegistry — counter/gauge registration idempotence, hot-path
//     bounds safety, name-sorted snapshots, snapshot merge algebra,
//     render determinism;
//   * exporters — the text form's exact line grammar and the Chrome
//     trace_event JSON's track layout;
//   * the end-to-end knob — a traced Testbed produces events from every
//     instrumented layer, and enabling tracing moves no bit of the
//     energy digest.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/demo_app.h"
#include "apps/testbed.h"
#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"

namespace eandroid::obs {
namespace {

TEST(TraceRecorderTest, RecordsInOrderBelowCapacity) {
  TraceRecorder rec(8);
  const NameIdx tick = rec.intern("tick");
  for (int i = 0; i < 5; ++i) {
    rec.record(TraceCategory::kSim, tick, /*uid=*/-1, /*arg=*/i,
               /*t_us=*/i * 10);
  }
  EXPECT_EQ(rec.size(), 5u);
  EXPECT_EQ(rec.total_recorded(), 5u);
  EXPECT_EQ(rec.dropped(), 0u);
  std::vector<std::int64_t> args;
  rec.for_each([&](const TraceEvent& ev) { args.push_back(ev.arg); });
  EXPECT_EQ(args, (std::vector<std::int64_t>{0, 1, 2, 3, 4}));
}

TEST(TraceRecorderTest, RingOverwritesOldestAndCountsDropped) {
  TraceRecorder rec(4);
  const NameIdx tick = rec.intern("tick");
  for (int i = 0; i < 10; ++i) {
    rec.record(TraceCategory::kSim, tick, -1, i, i);
  }
  EXPECT_EQ(rec.size(), 4u);
  EXPECT_EQ(rec.total_recorded(), 10u);
  EXPECT_EQ(rec.dropped(), 6u);
  std::vector<std::int64_t> args;
  rec.for_each([&](const TraceEvent& ev) { args.push_back(ev.arg); });
  // The newest four, oldest first.
  EXPECT_EQ(args, (std::vector<std::int64_t>{6, 7, 8, 9}));
}

TEST(TraceRecorderTest, ZeroCapacityIsClampedToOne) {
  TraceRecorder rec(0);
  EXPECT_EQ(rec.capacity(), 1u);
  rec.record_lit(TraceCategory::kSim, "a", -1, 1, 1);
  rec.record_lit(TraceCategory::kSim, "b", -1, 2, 2);
  EXPECT_EQ(rec.size(), 1u);
  EXPECT_EQ(rec.dropped(), 1u);
}

TEST(TraceRecorderTest, InternIsStableAndClearKeepsNames) {
  TraceRecorder rec(4);
  const NameIdx a = rec.intern("alpha");
  const NameIdx b = rec.intern("beta");
  EXPECT_NE(a, b);
  EXPECT_EQ(rec.intern("alpha"), a);  // idempotent
  rec.record(TraceCategory::kPower, a, 7, 0, 1);
  rec.clear();
  EXPECT_EQ(rec.size(), 0u);
  EXPECT_EQ(rec.total_recorded(), 0u);
  // Cached indices stay valid across clear().
  EXPECT_EQ(rec.intern("alpha"), a);
  EXPECT_EQ(rec.names().routine_name(b), "beta");
}

TEST(TraceRecorderTest, RecordingSwitchGatesBothRecordPaths) {
  TraceRecorder rec(4);
  const NameIdx tick = rec.intern("tick");
  rec.set_recording(false);
  rec.record(TraceCategory::kSim, tick, -1, 1, 1);
  rec.record_lit(TraceCategory::kSim, "other", -1, 2, 2);
  EXPECT_EQ(rec.total_recorded(), 0u);
  rec.set_recording(true);
  rec.record(TraceCategory::kSim, tick, -1, 3, 3);
  EXPECT_EQ(rec.total_recorded(), 1u);
}

TEST(TraceCategoryTest, EveryCategoryHasAName) {
  for (int i = 0; i < kTraceCategoryCount; ++i) {
    EXPECT_STRNE(to_string(static_cast<TraceCategory>(i)), "?");
  }
}

TEST(MetricsRegistryTest, CountersAndGauges) {
  MetricsRegistry reg;
  const MetricId hits = reg.counter("hits");
  const MetricId mj = reg.gauge("mj");
  EXPECT_EQ(reg.counter("hits"), hits);  // idempotent per name
  reg.add(hits);
  reg.add(hits, 4);
  reg.observe(mj, 2.0);
  reg.observe(mj, -1.0);
  reg.observe(mj, 0.5);
  EXPECT_EQ(reg.count(hits), 5u);
  EXPECT_EQ(reg.counter_value("hits"), 5u);
  EXPECT_EQ(reg.counter_value("never_registered"), 0u);

  const MetricsSnapshot snap = reg.snapshot();
  const MetricRow* row = snap.find("mj");
  ASSERT_NE(row, nullptr);
  EXPECT_FALSE(row->is_counter);
  EXPECT_EQ(row->count, 3u);
  EXPECT_DOUBLE_EQ(row->sum, 1.5);
  EXPECT_DOUBLE_EQ(row->min, -1.0);
  EXPECT_DOUBLE_EQ(row->max, 2.0);
}

TEST(MetricsRegistryTest, ForeignIdsAreDroppedNotCorrupting) {
  // An id minted by a different registry must degrade to a no-op, never
  // an out-of-bounds write (the subsystem-outlives-server hazard).
  MetricsRegistry reg;
  reg.add(MetricId{12345});
  reg.observe(MetricId{12345}, 1.0);
  EXPECT_EQ(reg.count(MetricId{12345}), 0u);
  EXPECT_EQ(reg.size(), 0u);
}

TEST(MetricsSnapshotTest, RowsAreNameSortedRegardlessOfRegistration) {
  MetricsRegistry a;
  a.add(a.counter("zebra"));
  a.add(a.counter("apple"));
  MetricsRegistry b;
  b.add(b.counter("apple"));
  b.add(b.counter("zebra"));
  EXPECT_EQ(a.snapshot().render(), b.snapshot().render());
  const MetricsSnapshot snap = a.snapshot();
  ASSERT_EQ(snap.rows.size(), 2u);
  EXPECT_EQ(snap.rows[0].name, "apple");
  EXPECT_EQ(snap.rows[1].name, "zebra");
}

TEST(MetricsSnapshotTest, MergeAddsCountersAndFoldsGauges) {
  MetricsRegistry a;
  a.add(a.counter("shared"), 2);
  a.add(a.counter("only_a"), 1);
  a.observe(a.gauge("g"), 1.0);
  MetricsRegistry b;
  b.add(b.counter("shared"), 3);
  b.add(b.counter("only_b"), 7);
  b.observe(b.gauge("g"), 5.0);
  b.observe(b.gauge("g"), -2.0);

  MetricsSnapshot merged = a.snapshot();
  merged.merge(b.snapshot());
  EXPECT_EQ(merged.find("shared")->count, 5u);
  EXPECT_EQ(merged.find("only_a")->count, 1u);
  EXPECT_EQ(merged.find("only_b")->count, 7u);
  const MetricRow* g = merged.find("g");
  ASSERT_NE(g, nullptr);
  EXPECT_EQ(g->count, 3u);
  EXPECT_DOUBLE_EQ(g->sum, 4.0);
  EXPECT_DOUBLE_EQ(g->min, -2.0);
  EXPECT_DOUBLE_EQ(g->max, 5.0);
  // Merge result stays sorted, so it can be merged again.
  for (std::size_t i = 1; i < merged.rows.size(); ++i) {
    EXPECT_LT(merged.rows[i - 1].name, merged.rows[i].name);
  }
}

TEST(MetricsSnapshotTest, UnobservedGaugeRendersAsEmpty) {
  MetricsRegistry reg;
  (void)reg.gauge("idle");
  EXPECT_EQ(reg.snapshot().render(), "idle gauge n=0\n");
}

TEST(ObservabilityTest, TraceIsNullUnlessRequested) {
  Observability off{ObsOptions{}};
  EXPECT_EQ(off.trace(), nullptr);
  Observability on{ObsOptions{.trace = true, .trace_capacity = 32}};
  ASSERT_NE(on.trace(), nullptr);
  EXPECT_EQ(on.trace()->capacity(), 32u);
}

TEST(ExportTest, TextTraceLineGrammar) {
  TraceRecorder rec(8);
  rec.record_lit(TraceCategory::kPower, "wakelock.acquire", 10007, 1, 1500);
  rec.record_lit(TraceCategory::kEnergy, "energy.slice", -1, 42, 250000);
  EXPECT_EQ(text_trace(rec),
            "# trace events=2 dropped=0\n"
            "@1500 power wakelock.acquire uid=10007 arg=1\n"
            "@250000 energy energy.slice uid=-1 arg=42\n");
}

TEST(ExportTest, TextTraceReportsDroppedPrefix) {
  TraceRecorder rec(2);
  for (int i = 0; i < 5; ++i) {
    rec.record_lit(TraceCategory::kSim, "tick", -1, i, i);
  }
  const std::string text = text_trace(rec);
  EXPECT_NE(text.find("# trace events=2 dropped=3\n"), std::string::npos);
  EXPECT_NE(text.find("@3 sim tick uid=-1 arg=3\n"), std::string::npos);
  EXPECT_EQ(text.find("arg=1\n"), std::string::npos);  // overwritten
}

TEST(ExportTest, ChromeTraceHasOneTrackPerUidPlusSystem) {
  TraceRecorder rec(8);
  rec.record_lit(TraceCategory::kSim, "dispatch", -1, 0, 10);
  rec.record_lit(TraceCategory::kBinder, "binder.txn", 10007, 64, 20);
  rec.record_lit(TraceCategory::kBinder, "binder.txn", 10008, 64, 30);
  const std::string json = chrome_trace(rec, /*pid=*/3);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u);
  EXPECT_EQ(json.rfind("]}"), json.size() - 2);
  // Metadata names the system track and one track per uid.
  EXPECT_NE(json.find("\"thread_name\",\"args\":{\"name\":\"system\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_name\",\"args\":{\"name\":\"uid 10007\"}"),
            std::string::npos);
  EXPECT_NE(json.find("\"thread_name\",\"args\":{\"name\":\"uid 10008\"}"),
            std::string::npos);
  // Instant events carry the device pid and the virtual-time ts.
  EXPECT_NE(json.find("\"ph\":\"i\",\"s\":\"t\",\"pid\":3,\"tid\":10007,"
                      "\"ts\":20"),
            std::string::npos);
}

TEST(ExportTest, ChromeTraceEscapesNames) {
  TraceRecorder rec(2);
  rec.record_lit(TraceCategory::kSim, "quote\"back\\slash", -1, 0, 0);
  const std::string json = chrome_trace(rec);
  EXPECT_NE(json.find("quote\\\"back\\\\slash"), std::string::npos);
}

// --- End-to-end: the ObsOptions knob on a real device ---

apps::TestbedOptions traced_options(std::uint64_t seed) {
  apps::TestbedOptions options;
  options.seed = seed;
  options.obs.trace = true;
  options.obs.trace_capacity = 1u << 18;
  return options;
}

std::string drive_session(apps::Testbed& bed) {
  apps::DemoAppSpec victim = apps::victim_spec();
  bed.install<apps::DemoApp>(victim);
  bed.start();
  bed.server().user_launch(victim.package);
  // A service start goes through the kernel binder (txn trace + metric).
  bed.context_of(victim.package)
      .start_service(framework::Intent::explicit_for(
          victim.package, apps::DemoApp::kService));
  bed.run_for(sim::seconds(10));
  bed.server().user_press_home();
  bed.run_for(sim::seconds(20));
  return bed.energy_digest();
}

TEST(ObsIntegrationTest, TracedDeviceCoversEveryInstrumentedLayer) {
  apps::Testbed bed(traced_options(11));
  drive_session(bed);
  const TraceRecorder* rec = bed.server().obs().trace();
  ASSERT_NE(rec, nullptr);
  ASSERT_EQ(rec->dropped(), 0u);
  bool saw[kTraceCategoryCount] = {};
  rec->for_each([&](const TraceEvent& ev) {
    saw[static_cast<int>(ev.category)] = true;
  });
  EXPECT_TRUE(saw[static_cast<int>(TraceCategory::kSim)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceCategory::kLifecycle)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceCategory::kPower)]);
  EXPECT_TRUE(saw[static_cast<int>(TraceCategory::kEnergy)]);

  const MetricsRegistry& metrics = bed.server().obs().metrics();
  EXPECT_GT(metrics.counter_value("sim.events_dispatched"), 0u);
  EXPECT_GT(metrics.counter_value("fw.bus_events"), 0u);
  EXPECT_GT(metrics.counter_value("energy.slices"), 0u);
  EXPECT_GT(metrics.counter_value("binder.txns"), 0u);
}

TEST(ObsIntegrationTest, EnablingTracingMovesNoBitOfTheDigest) {
  apps::Testbed plain((apps::TestbedOptions{.seed = 11}));
  apps::Testbed traced(traced_options(11));
  EXPECT_EQ(drive_session(plain), drive_session(traced));
}

TEST(ObsIntegrationTest, MetricsCountMatchesSimulatorGroundTruth) {
  apps::Testbed bed(traced_options(5));
  drive_session(bed);
  EXPECT_EQ(
      bed.server().obs().metrics().counter_value("sim.events_dispatched"),
      bed.sim().events_dispatched());
  EXPECT_EQ(bed.server().obs().metrics().counter_value("energy.slices"),
            bed.sampler().slices_emitted());
}

}  // namespace
}  // namespace eandroid::obs
