// Oracle contracts: a healthy tree passes every leg, the verdict's
// bookkeeping (steps applied, per-leg timings) is filled in, executors
// replay the same program identically on single devices and fleets, and
// the oracle refuses ungrammatical input.
#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/executor.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "sim/check.h"

namespace eandroid::fuzz {
namespace {

TEST(OracleTest, HealthyTreePassesEveryLeg) {
  GeneratorOptions options;
  options.seed = 42;
  options.min_steps = 10;
  options.max_steps = 20;
  const ScenarioProgram program = generate(options);
  const OracleVerdict verdict = run_oracle(program);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
  EXPECT_EQ(verdict.steps_applied, program.steps.size());

  // Every enabled leg reports a timing entry.
  const char* const expected[] = {
      "single.reference",      "single.determinism",
      "single.hot_vs_baseline", "single.fused_vs_virtual",
      "single.baseline_virtual", "single.invariants",
      "fleet.reference",       "fleet.shards4",
      "fleet.shards8",         "fleet.work_stealing",
      "fleet.batched"};
  for (const char* leg : expected) {
    EXPECT_TRUE(std::any_of(verdict.timings.begin(), verdict.timings.end(),
                            [leg](const LegTiming& t) { return t.leg == leg; }))
        << "missing timing for " << leg;
  }
}

TEST(OracleTest, SingleLegsAloneAreCheaperAndStillPass) {
  GeneratorOptions gen;
  gen.seed = 1301;
  gen.min_steps = 6;
  gen.max_steps = 12;
  OracleOptions options;
  options.fleet_legs = false;
  const OracleVerdict verdict = run_oracle(generate(gen), options);
  EXPECT_TRUE(verdict.ok()) << verdict.to_string();
  for (const LegTiming& t : verdict.timings) {
    EXPECT_EQ(t.leg.rfind("single.", 0), 0u) << t.leg;
  }
}

TEST(OracleTest, ExecutorAppliesEveryStepAndStaysInvariantClean) {
  GeneratorOptions gen;
  gen.seed = 7;
  const ScenarioProgram program = generate(gen);
  fleet::DeviceSpec spec;
  spec.seed = program.seed;
  fleet::DeviceContext bed(spec);
  install_cast(bed);
  bed.start();
  ProgramExecutor::Options exec_options;
  exec_options.check_invariants_each_step = true;
  ProgramExecutor executor(bed, program, exec_options);
  executor.run();
  EXPECT_EQ(executor.steps_applied(), program.steps.size());
  EXPECT_TRUE(executor.violations().empty())
      << executor.violations().front();
}

TEST(OracleTest, RejectsUngrammaticalInput) {
  ScenarioProgram bogus;
  bogus.horizon_us = 1'000'000;
  Step unbind;
  unbind.at_us = 500'000;
  unbind.op = OpKind::kUnbindService;
  bogus.steps.push_back(unbind);
  EXPECT_THROW(run_oracle(bogus), sim::CheckFailure);
}

}  // namespace
}  // namespace eandroid::fuzz
