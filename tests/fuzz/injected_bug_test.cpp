// The fuzzer's acceptance demonstration: arm a deliberate equivalence
// bug (the fused sparse fold drops the CPU part column — exactly the
// kind of one-column slip a metering refactor could make), and prove the
// pipeline catches it within a bounded seed budget, auto-shrinks the
// failing program to a minimal replayable reproducer, and goes quiet the
// moment the bug is fixed.
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "energy/pipeline.h"
#include "fuzz/generator.h"
#include "fuzz/oracle.h"
#include "fuzz/shrink.h"

namespace eandroid::fuzz {
namespace {

/// Restores the disarmed seam even when an assertion bails out early.
class ScopedSkipPart {
 public:
  explicit ScopedSkipPart(int part) {
    energy::MeteringPipeline::set_test_skip_part(part);
  }
  ~ScopedSkipPart() { energy::MeteringPipeline::set_test_skip_part(-1); }
};

TEST(InjectedBugTest, FusedFoldBugIsCaughtShrunkAndReplayable) {
  // Single-device legs only: the injected bug lives in the metering fold,
  // so the fused-vs-virtual leg is the one that must catch it, and the
  // fleet legs (all fused) would only slow the hunt down.
  OracleOptions oracle_options;
  oracle_options.fleet_legs = false;
  GeneratorOptions gen;
  gen.min_steps = 6;
  gen.max_steps = 12;

  ScenarioProgram failing;
  OracleVerdict first_verdict;
  {
    const ScopedSkipPart armed(0);  // drop the CPU column in the fused fold

    // Bounded seed budget: the bug must surface within 8 seeds (any
    // program that charges app CPU trips it; some seeds touch only
    // global ops and sail through, which is why this is a budget).
    bool caught = false;
    for (std::uint64_t seed = 1; seed <= 8 && !caught; ++seed) {
      gen.seed = seed;
      const ScenarioProgram program = generate(gen);
      const OracleVerdict verdict = run_oracle(program, oracle_options);
      if (!verdict.ok()) {
        caught = true;
        failing = program;
        first_verdict = verdict;
      }
    }
    ASSERT_TRUE(caught) << "injected bug survived the 8-seed budget";
    EXPECT_TRUE(std::any_of(
        first_verdict.failures.begin(), first_verdict.failures.end(),
        [](const std::string& f) {
          return f.find("fused_vs_virtual") != std::string::npos;
        }))
        << first_verdict.to_string();

    // Auto-shrink while the bug is live.
    ShrinkStats stats;
    ShrinkOptions shrink_options;
    shrink_options.max_candidates = 150;
    const ScenarioProgram shrunk = shrink(
        failing,
        [&oracle_options](const ScenarioProgram& candidate) {
          return !run_oracle(candidate, oracle_options).ok();
        },
        &stats, shrink_options);

    // Minimal: the smallest CPU-running program is a step or two.
    EXPECT_TRUE(validate(shrunk));
    EXPECT_LE(shrunk.steps.size(), 2u)
        << "shrink stalled at " << shrunk.steps.size() << " steps";
    EXPECT_LT(stats.final_steps, stats.initial_steps);

    // The reproducer replays from its serialized form alone.
    ScenarioProgram replayed;
    std::string error;
    ASSERT_TRUE(ScenarioProgram::parse(shrunk.serialize(), &replayed, &error))
        << error;
    EXPECT_FALSE(run_oracle(replayed, oracle_options).ok());
    failing = replayed;
  }

  // Bug fixed (seam disarmed): the very same reproducer goes green.
  EXPECT_TRUE(run_oracle(failing, oracle_options).ok());
}

TEST(InjectedBugTest, InvariantLegAlsoFlagsTheBrokenConservation) {
  // Dropping a part column doesn't just break fused-vs-virtual: the
  // engine's total no longer matches the battery's drain, which the
  // per-step InvariantChecker leg reports as an energy-conservation
  // violation — two independent oracles over one bug.
  const ScopedSkipPart armed(0);
  // A program guaranteed to charge app CPU (a generated one might only
  // touch global ops, leaving the zeroed column empty anyway): launch the
  // victim and run a foreground burst.
  ScenarioProgram program;
  program.seed = 1;
  Step launch;
  launch.at_us = 100'001;
  launch.op = OpKind::kUserLaunch;
  Step burst;
  burst.at_us = 600'003;
  burst.op = OpKind::kCpuBurst;
  burst.a = 400;
  program.steps = {launch, burst};
  program.horizon_us = 3'000'000;
  ASSERT_TRUE(validate(program));
  OracleOptions oracle_options;
  oracle_options.fleet_legs = false;
  const OracleVerdict verdict = run_oracle(program, oracle_options);
  EXPECT_FALSE(verdict.invariant_violations.empty());
}

}  // namespace
}  // namespace eandroid::fuzz
