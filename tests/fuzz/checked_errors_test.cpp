// Negative paths the fuzzer's machinery leans on: every misuse below
// must fail loudly (EANDROID_CHECK throws in all build types), because a
// silent clamp or late crash would turn a fuzz failure into noise.
#include <gtest/gtest.h>

#include "fleet/fleet.h"
#include "fuzz/executor.h"
#include "fuzz/generator.h"
#include "sim/check.h"

namespace eandroid::fuzz {
namespace {

TEST(CheckedErrorsTest, ArmingAProgramAfterItsFirstInstantThrows) {
  // Steps are scheduled at absolute instants; a device whose clock has
  // already passed a step's time must refuse (schedule_at-in-the-past),
  // not silently reorder the program.
  GeneratorOptions gen;
  gen.seed = 4;
  const ScenarioProgram program = generate(gen);
  fleet::DeviceContext bed{fleet::DeviceSpec{}};
  install_cast(bed);
  bed.start();
  bed.run_for(sim::micros(program.steps.front().at_us + 1));
  ProgramExecutor executor(bed, program);
  EXPECT_THROW(executor.arm(), sim::CheckFailure);
}

TEST(CheckedErrorsTest, BrokerMutationAfterFreezeThrows) {
  fleet::PushBroker broker;
  fleet::PushCampaign campaign;
  campaign.sender_package = kCastPackages[2];
  campaign.target_package = kCastPackages[kPushApp];
  broker.add_campaign(campaign);
  broker.freeze();
  EXPECT_THROW(broker.add_campaign(campaign), sim::CheckFailure);
}

TEST(CheckedErrorsTest, CampaignAfterWorkStealingStartThrows) {
  // The fleet-level shape of the same rule: start() freezes the broker in
  // work-stealing mode because workers read campaigns concurrently.
  fleet::FleetOptions options;
  options.device_count = 2;
  options.scheduler = fleet::Scheduler::kWorkStealing;
  options.workers = 2;
  options.install_plan = cast_install_plan();
  fleet::Fleet fleet(std::move(options));
  fleet::PushCampaign campaign;
  campaign.sender_package = kCastPackages[2];
  campaign.target_package = kCastPackages[kPushApp];
  fleet.broker().add_campaign(campaign);
  fleet.start();
  EXPECT_THROW(fleet.broker().add_campaign(campaign), sim::CheckFailure);
}

TEST(CheckedErrorsTest, HibernationPlusBatchedCoreThrows) {
  // The oracle never combines them (armed executor closures could not
  // survive a park/replay cycle, and the batched core pins group rows for
  // the fleet's lifetime); the constructor must enforce the same rule.
  fleet::FleetOptions options;
  options.device_count = 4;
  options.scheduler = fleet::Scheduler::kWorkStealing;
  options.core = fleet::FleetCore::kBatched;
  options.max_resident_devices = 2;
  options.install_plan = cast_install_plan();
  EXPECT_THROW(fleet::Fleet{std::move(options)}, sim::CheckFailure);
}

}  // namespace
}  // namespace eandroid::fuzz
