// Corpus replay: every committed reproducer under tests/fuzz/corpus/ is
// parsed, grammar-checked, and replayed through the FULL stacked oracle,
// forever. A program lands here because it once broke (or was hand-built
// to stress) an equivalence leg — this suite is the regression ratchet
// that keeps those scenarios green.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "fuzz/oracle.h"
#include "fuzz/program.h"

namespace eandroid::fuzz {
namespace {

std::vector<std::filesystem::path> corpus_files() {
  std::vector<std::filesystem::path> files;
  for (const auto& entry :
       std::filesystem::directory_iterator(EANDROID_FUZZ_CORPUS_DIR)) {
    if (entry.path().extension() == ".prog") files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());
  return files;
}

std::string slurp(const std::filesystem::path& path) {
  std::ifstream in(path);
  std::ostringstream text;
  text << in.rdbuf();
  return text.str();
}

TEST(CorpusReplayTest, CorpusIsPresentAndGrammatical) {
  const auto files = corpus_files();
  ASSERT_GE(files.size(), 5u) << "corpus went missing from "
                              << EANDROID_FUZZ_CORPUS_DIR;
  for (const auto& path : files) {
    ScenarioProgram program;
    std::string error;
    ASSERT_TRUE(ScenarioProgram::parse(slurp(path), &program, &error))
        << path << ": " << error;
    std::vector<std::string> problems;
    EXPECT_TRUE(validate(program, &problems))
        << path << ": " << problems.front();
    // The canonical-form contract: committed reproducers re-serialize to
    // the bytes on disk minus leading comment lines.
    std::string text = slurp(path);
    std::string body;
    std::istringstream lines(text);
    std::string line;
    while (std::getline(lines, line)) {
      if (!line.empty() && line[0] == '#') continue;
      body += line + "\n";
    }
    EXPECT_EQ(program.serialize(), body) << path;
  }
}

TEST(CorpusReplayTest, EveryReproducerPassesTheFullOracle) {
  for (const auto& path : corpus_files()) {
    ScenarioProgram program;
    std::string error;
    ASSERT_TRUE(ScenarioProgram::parse(slurp(path), &program, &error))
        << path << ": " << error;
    const OracleVerdict verdict = run_oracle(program);
    EXPECT_TRUE(verdict.ok()) << path << ":\n" << verdict.to_string();
    EXPECT_EQ(verdict.steps_applied, program.steps.size()) << path;
  }
}

}  // namespace
}  // namespace eandroid::fuzz
