// Shrinker contracts, against cheap synthetic predicates (no oracle
// replays here — injected_bug_test.cpp covers the end-to-end path):
// ddmin converges to the failure-carrying core, every candidate shown to
// the predicate is grammatical, parameters descend to their minimum, and
// polarity misuse is a checked error.
#include <gtest/gtest.h>

#include <algorithm>

#include "fuzz/generator.h"
#include "fuzz/shrink.h"
#include "sim/check.h"

namespace eandroid::fuzz {
namespace {

bool has_op(const ScenarioProgram& program, OpKind op) {
  return std::any_of(program.steps.begin(), program.steps.end(),
                     [op](const Step& s) { return s.op == op; });
}

/// A seed whose program contains the given op (the generator covers the
/// grammar well, so one is always nearby).
ScenarioProgram program_containing(OpKind op) {
  for (std::uint64_t seed = 1; seed < 500; ++seed) {
    GeneratorOptions options;
    options.seed = seed;
    ScenarioProgram program = generate(options);
    if (has_op(program, op)) return program;
  }
  ADD_FAILURE() << "no program contains " << to_string(op);
  return {};
}

TEST(ShrinkTest, DdminReducesToTheFailureCarryingCore) {
  // "Fails iff a wakelock is ever acquired" — the minimal reproducer is
  // one kAcquireWakelock step.
  const ScenarioProgram program = program_containing(OpKind::kAcquireWakelock);
  ShrinkStats stats;
  const ScenarioProgram reduced = shrink(
      program,
      [](const ScenarioProgram& p) {
        return has_op(p, OpKind::kAcquireWakelock);
      },
      &stats);
  EXPECT_TRUE(validate(reduced));
  EXPECT_TRUE(has_op(reduced, OpKind::kAcquireWakelock));
  EXPECT_EQ(reduced.steps.size(), 1u)
      << "steps left: " << reduced.steps.size();
  EXPECT_EQ(stats.initial_steps, static_cast<int>(program.steps.size()));
  EXPECT_EQ(stats.final_steps, 1);
  EXPECT_GT(stats.candidates, 0);
}

TEST(ShrinkTest, DependentOpsSurviveTogether) {
  // "Fails iff an unbind happens" — the reproducer must keep the bind
  // that makes the unbind grammatical: exactly two steps.
  const ScenarioProgram program = program_containing(OpKind::kUnbindService);
  const ScenarioProgram reduced = shrink(
      program, [](const ScenarioProgram& p) {
        return has_op(p, OpKind::kUnbindService);
      });
  EXPECT_TRUE(validate(reduced));
  EXPECT_TRUE(has_op(reduced, OpKind::kUnbindService));
  EXPECT_TRUE(has_op(reduced, OpKind::kBindService));
  EXPECT_EQ(reduced.steps.size(), 2u);
}

TEST(ShrinkTest, EveryCandidateShownToThePredicateIsValid) {
  const ScenarioProgram program = program_containing(OpKind::kCpuBurst);
  bool all_valid = true;
  (void)shrink(program, [&all_valid](const ScenarioProgram& p) {
    if (!validate(p)) all_valid = false;
    return has_op(p, OpKind::kCpuBurst);
  });
  EXPECT_TRUE(all_valid);
}

TEST(ShrinkTest, ParametersDescendToTheRangeMinimum) {
  const ScenarioProgram program = program_containing(OpKind::kCpuBurst);
  const ScenarioProgram reduced = shrink(
      program,
      [](const ScenarioProgram& p) { return has_op(p, OpKind::kCpuBurst); });
  ASSERT_EQ(reduced.steps.size(), 1u);
  // kCpuBurst's a is "milliseconds of CPU", minimum 1.
  EXPECT_EQ(reduced.steps[0].a, 1);
}

TEST(ShrinkTest, CandidateBudgetBoundsTheWork) {
  const ScenarioProgram program = program_containing(OpKind::kSendPush);
  ShrinkOptions options;
  options.max_candidates = 3;
  ShrinkStats stats;
  (void)shrink(
      program,
      [](const ScenarioProgram& p) { return has_op(p, OpKind::kSendPush); },
      &stats, options);
  EXPECT_LE(stats.candidates, 3);
}

TEST(ShrinkTest, PassingProgramIsACheckedError) {
  GeneratorOptions options;
  options.seed = 5;
  const ScenarioProgram program = generate(options);
  EXPECT_THROW(
      (void)shrink(program, [](const ScenarioProgram&) { return false; }),
      sim::CheckFailure);
}

}  // namespace
}  // namespace eandroid::fuzz
