// Generator + program contracts: bitwise seed determinism, grammar
// validity of everything emitted, precondition discipline (no op on a
// dead uid, no unbind without a bind), exact serialization round-trips,
// and the repair() normalizer the shrinker depends on.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "fuzz/generator.h"
#include "fuzz/program.h"

namespace eandroid::fuzz {
namespace {

TEST(GeneratorTest, SameSeedIsBitwiseIdentical) {
  for (std::uint64_t seed = 1; seed <= 16; ++seed) {
    GeneratorOptions options;
    options.seed = seed;
    const ScenarioProgram first = generate(options);
    const ScenarioProgram second = generate(options);
    EXPECT_EQ(first, second) << "seed " << seed;
    EXPECT_EQ(first.serialize(), second.serialize()) << "seed " << seed;
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  GeneratorOptions options;
  std::set<std::string> distinct;
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    options.seed = seed;
    distinct.insert(generate(options).serialize());
  }
  // Not a tautology (two seeds COULD collide), but 32 collisions would
  // mean the seed never reaches the stream.
  EXPECT_GT(distinct.size(), 30u);
}

TEST(GeneratorTest, EveryEmittedProgramSatisfiesTheGrammar) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    GeneratorOptions options;
    options.seed = seed;
    const ScenarioProgram program = generate(options);
    std::vector<std::string> problems;
    EXPECT_TRUE(validate(program, &problems))
        << "seed " << seed << ": " << problems.front();
    EXPECT_GE(static_cast<int>(program.steps.size()), options.min_steps);
    EXPECT_LE(static_cast<int>(program.steps.size()), options.max_steps);
    EXPECT_GE(program.horizon_us,
              program.steps.back().at_us + options.tail_us);
  }
}

TEST(GeneratorTest, PreconditionsHoldAlongEveryProgram) {
  // Replay the abstract machine manually and assert the discipline the
  // grammar promises: acting apps are alive, release-style ops only occur
  // with a positive balance, charger ops alternate.
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    GeneratorOptions options;
    options.seed = seed;
    const ScenarioProgram program = generate(options);
    GrammarState state;
    std::int64_t last_at = 0;
    for (const Step& step : program.steps) {
      ASSERT_GT(step.at_us, last_at) << "seed " << seed;
      last_at = step.at_us;
      ASSERT_TRUE(state.step_valid(step))
          << "seed " << seed << " op " << to_string(step.op);
      if (step.op != OpKind::kUserLaunch && step.op != OpKind::kUserHome &&
          step.op != OpKind::kUserBack && step.op != OpKind::kUserTap) {
        // Every acting op names a live actor (kUserLaunch may revive).
        if (step.op == OpKind::kUnbindService) {
          EXPECT_GT(state.bindings(step.app), 0);
        }
        if (step.op == OpKind::kReleaseWakelock) {
          EXPECT_GT(state.locks(step.app), 0);
        }
        if (step.op == OpKind::kCancelAlarm) {
          EXPECT_GT(state.alarms(step.app), 0);
        }
        if (step.op == OpKind::kSensorEnd) {
          EXPECT_GT(state.sessions(step.app, step.a), 0);
        }
        if (step.op == OpKind::kPlugCharger) EXPECT_FALSE(state.charging());
        if (step.op == OpKind::kUnplugCharger) EXPECT_TRUE(state.charging());
      }
      state.apply(step);
    }
  }
}

TEST(GeneratorTest, DeadActorNeverActs) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    GeneratorOptions options;
    options.seed = seed;
    const ScenarioProgram program = generate(options);
    GrammarState state;
    for (const Step& step : program.steps) {
      // Global ops (gestures, charger, fault windows) carry app == 0
      // without acting through it; only actor ops face the liveness rule.
      if (op_has_actor(step.op) && !state.alive(step.app)) {
        EXPECT_EQ(step.op, OpKind::kUserLaunch)
            << "seed " << seed << ": dead actor performed "
            << to_string(step.op);
      }
      state.apply(step);
    }
  }
}

TEST(ProgramTest, SerializationRoundTripsExactly) {
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    GeneratorOptions options;
    options.seed = seed;
    const ScenarioProgram program = generate(options);
    const std::string text = program.serialize();
    ScenarioProgram reparsed;
    std::string error;
    ASSERT_TRUE(ScenarioProgram::parse(text, &reparsed, &error))
        << "seed " << seed << ": " << error;
    EXPECT_EQ(reparsed, program) << "seed " << seed;
    EXPECT_EQ(reparsed.serialize(), text) << "seed " << seed;
  }
}

TEST(ProgramTest, ParseRejectsGarbageWithLineNumbers) {
  ScenarioProgram out;
  std::string error;
  EXPECT_FALSE(ScenarioProgram::parse("not a program", &out, &error));
  EXPECT_NE(error.find("line 1"), std::string::npos) << error;

  // A valid program with one corrupted step line.
  GeneratorOptions options;
  options.seed = 7;
  std::string text = generate(options).serialize();
  const auto pos = text.find("user_");
  if (pos != std::string::npos) {
    text.replace(pos, 5, "trash");
    EXPECT_FALSE(ScenarioProgram::parse(text, &out, &error));
    EXPECT_NE(error.find("line"), std::string::npos) << error;
  }
}

TEST(ProgramTest, ParseSkipsComments) {
  GeneratorOptions options;
  options.seed = 3;
  const ScenarioProgram program = generate(options);
  const std::string text =
      "# reproducer from seed 3\n# second comment\n" + program.serialize();
  ScenarioProgram reparsed;
  std::string error;
  ASSERT_TRUE(ScenarioProgram::parse(text, &reparsed, &error)) << error;
  EXPECT_EQ(reparsed, program);
}

TEST(ProgramTest, ValidateCatchesBrokenPrograms) {
  GeneratorOptions options;
  options.seed = 11;
  const ScenarioProgram good = generate(options);

  ScenarioProgram unsorted = good;
  unsorted.steps[1].at_us = unsorted.steps[0].at_us;
  EXPECT_FALSE(validate(unsorted));

  ScenarioProgram short_horizon = good;
  short_horizon.horizon_us = short_horizon.steps.back().at_us - 1;
  EXPECT_FALSE(validate(short_horizon));

  ScenarioProgram unbalanced = good;
  Step unbind;
  unbind.at_us = unbalanced.steps.front().at_us / 2;
  unbind.op = OpKind::kUnbindService;
  unbind.app = 0;
  unbalanced.steps.insert(unbalanced.steps.begin(), unbind);
  std::vector<std::string> problems;
  EXPECT_FALSE(validate(unbalanced, &problems));
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("step 0"), std::string::npos)
      << problems.front();
}

TEST(ProgramTest, RepairDropsInvalidatedDependents) {
  // bind at t1, unbind at t2: deleting the bind must drag the unbind out.
  ScenarioProgram program;
  program.seed = 1;
  Step bind;
  bind.at_us = 100'000;
  bind.op = OpKind::kBindService;
  bind.app = 1;
  Step unbind;
  unbind.at_us = 200'000;
  unbind.op = OpKind::kUnbindService;
  unbind.app = 1;
  program.steps = {bind, unbind};
  program.horizon_us = 1'000'000;
  ASSERT_TRUE(validate(program));

  ScenarioProgram broken = program;
  broken.steps.erase(broken.steps.begin());
  EXPECT_FALSE(validate(broken));
  const ScenarioProgram repaired = repair(broken);
  EXPECT_TRUE(validate(repaired));
  for (const Step& step : repaired.steps) {
    EXPECT_NE(step.op, OpKind::kUnbindService);
  }
}

}  // namespace
}  // namespace eandroid::fuzz
