#include "analysis/corpus.h"

#include <gtest/gtest.h>

namespace eandroid::analysis {
namespace {

TEST(CorpusTest, GeneratesRequestedSize) {
  const auto corpus = generate_corpus();
  EXPECT_EQ(corpus.size(), 1124u);
}

TEST(CorpusTest, DeterministicInSeed) {
  const auto a = generate_corpus();
  const auto b = generate_corpus();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].package, b[i].package);
    EXPECT_EQ(a[i].permissions.size(), b[i].permissions.size());
  }
}

TEST(CorpusTest, DifferentSeedsDiffer) {
  CorpusSpec other;
  other.seed = 99;
  const auto a = generate_corpus();
  const auto b = generate_corpus(other);
  int differing = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].permissions.size() != b[i].permissions.size()) ++differing;
  }
  EXPECT_GT(differing, 50);
}

TEST(CorpusTest, CoversAll28Categories) {
  const auto stats = analyze_corpus(generate_corpus());
  EXPECT_EQ(stats.by_category.size(), kCategories.size());
  for (const char* category : kCategories) {
    EXPECT_GT(stats.by_category.at(category).apps, 0) << category;
  }
}

TEST(CorpusTest, AggregateRatesMatchPaperFig2) {
  const auto stats = analyze_corpus(generate_corpus());
  // Fig 2: 72% exported, 81% WAKE_LOCK, 21% WRITE_SETTINGS. Sampling
  // noise over 1,124 draws stays within ±3 points.
  EXPECT_NEAR(stats.exported_pct(), 72.0, 3.0);
  EXPECT_NEAR(stats.wake_lock_pct(), 81.0, 3.0);
  EXPECT_NEAR(stats.write_settings_pct(), 21.0, 3.0);
}

TEST(CorpusTest, CategoryTiltsShowInPerCategoryRates) {
  const auto stats = analyze_corpus(generate_corpus());
  // Tools request WRITE_SETTINGS far more often than finance apps.
  const auto& tools = stats.by_category.at("tools");
  const auto& finance = stats.by_category.at("finance");
  EXPECT_GT(100.0 * tools.with_write_settings / tools.apps,
            100.0 * finance.with_write_settings / finance.apps);
}

TEST(CorpusTest, AnalyzeEmptyCorpusIsZero) {
  const CorpusStats stats = analyze_corpus({});
  EXPECT_EQ(stats.total_apps, 0);
  EXPECT_DOUBLE_EQ(stats.exported_pct(), 0.0);
}

TEST(CorpusTest, CustomTargetsAreHonoured) {
  CorpusSpec spec;
  spec.total_apps = 5000;
  spec.exported_rate = 0.30;
  spec.wake_lock_rate = 0.50;
  spec.write_settings_rate = 0.10;
  const auto stats = analyze_corpus(generate_corpus(spec));
  EXPECT_NEAR(stats.exported_pct(), 30.0, 3.0);
  EXPECT_NEAR(stats.wake_lock_pct(), 50.0, 3.0);
  EXPECT_NEAR(stats.write_settings_pct(), 10.0, 2.0);
}

TEST(CorpusTest, RenderMentionsPaperTargets) {
  const auto stats = analyze_corpus(generate_corpus());
  const std::string text = render_stats(stats, /*per_category=*/true);
  EXPECT_NE(text.find("72%"), std::string::npos);
  EXPECT_NE(text.find("81%"), std::string::npos);
  EXPECT_NE(text.find("21%"), std::string::npos);
  EXPECT_NE(text.find("game"), std::string::npos);
}

TEST(CorpusTest, EveryManifestHasRootActivity) {
  for (const auto& manifest : generate_corpus()) {
    EXPECT_NE(manifest.root_activity(), nullptr);
    EXPECT_FALSE(manifest.package.empty());
  }
}

}  // namespace
}  // namespace eandroid::analysis
