#include "analysis/attack_surface.h"

#include <gtest/gtest.h>

#include "analysis/corpus.h"

namespace eandroid::analysis {
namespace {

framework::Manifest manifest_with(bool exported_activity,
                                  bool exported_service, bool wake_lock,
                                  bool write_settings) {
  framework::Manifest m;
  m.package = "x";
  m.activities.push_back(
      framework::ActivityDecl{"Main", exported_activity, {}});
  if (exported_service) {
    m.services.push_back(framework::ServiceDecl{"S", true, {}});
  }
  if (wake_lock) m.permissions.push_back(framework::Permission::kWakeLock);
  if (write_settings) {
    m.permissions.push_back(framework::Permission::kWriteSettings);
  }
  return m;
}

TEST(AttackSurfaceTest, CountsEachFactOnce) {
  std::vector<framework::Manifest> corpus;
  corpus.push_back(manifest_with(true, true, true, true));
  corpus.push_back(manifest_with(false, false, false, false));
  const AttackSurface surface = measure_attack_surface(corpus);
  EXPECT_EQ(surface.total_apps, 2);
  EXPECT_EQ(surface.hijackable_activity, 1);
  EXPECT_EQ(surface.bindable_service, 1);
  EXPECT_EQ(surface.wakelock_users, 1);
  EXPECT_EQ(surface.can_write_settings, 1);
  EXPECT_DOUBLE_EQ(surface.pct(surface.hijackable_activity), 50.0);
}

TEST(AttackSurfaceTest, EmptyCorpusIsZero) {
  const AttackSurface surface = measure_attack_surface({});
  EXPECT_EQ(surface.total_apps, 0);
  EXPECT_DOUBLE_EQ(surface.pct(3), 0.0);
  const auto pairs = surface.expected_pairs(30);
  EXPECT_DOUBLE_EQ(pairs.hijack_pairs, 0.0);
}

TEST(AttackSurfaceTest, PairEstimateScalesWithInstallBase) {
  std::vector<framework::Manifest> corpus;
  for (int i = 0; i < 10; ++i) {
    corpus.push_back(manifest_with(i < 5, i < 2, false, false));
  }
  const AttackSurface surface = measure_attack_surface(corpus);
  const auto small = surface.expected_pairs(10);
  const auto large = surface.expected_pairs(100);
  EXPECT_NEAR(small.hijack_pairs, 9 * 0.5, 1e-9);
  EXPECT_NEAR(large.hijack_pairs, 99 * 0.5, 1e-9);
  EXPECT_GT(large.bind_pairs, small.bind_pairs);
}

TEST(AttackSurfaceTest, PaperCorpusMatchesFig2Rates) {
  const AttackSurface surface =
      measure_attack_surface(generate_corpus());
  // Exported-component rate from Fig 2 is 72%; the activity-only rate is
  // necessarily <= that but the same order.
  EXPECT_GT(surface.pct(surface.hijackable_activity), 50.0);
  EXPECT_NEAR(surface.pct(surface.can_hold_wakelock), 81.0, 3.0);
  EXPECT_NEAR(surface.pct(surface.can_write_settings), 21.0, 3.0);
}

TEST(AttackSurfaceTest, RenderContainsTheNumbers) {
  const AttackSurface surface =
      measure_attack_surface(generate_corpus());
  const std::string text = render_attack_surface(surface, 30);
  EXPECT_NE(text.find("attack surface over 1124 manifests"),
            std::string::npos);
  EXPECT_NE(text.find("30 installed apps"), std::string::npos);
}

}  // namespace
}  // namespace eandroid::analysis
