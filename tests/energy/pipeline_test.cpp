// MeteringPipeline unit suite (the `metering` ctest label): fold order,
// stage bracketing, the touched-view cell addressing, and fused-vs-virtual
// bit-identity on a live testbed. The integration-scale 8-way matrix lives
// in tests/integration/hotpath_equivalence_test.cpp; these tests pin the
// pipeline's contracts at the component level where a violation has a
// short, debuggable witness.

#include "energy/pipeline.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "apps/demo_app.h"
#include "apps/testbed.h"
#include "energy/battery_stats.h"
#include "energy/power_tutor.h"
#include "energy/timeline.h"
#include "framework/package_manager.h"

namespace eandroid::energy {
namespace {

using apps::DemoApp;
using apps::Testbed;
using apps::TestbedOptions;

kernelsim::Uid uid(std::int32_t v) { return kernelsim::Uid{v}; }

/// Builds a sealed standalone slice with a deterministic cell pattern:
/// three apps, staggered parts, two routine tags on the first app.
EnergySlice make_slice() {
  EnergySlice slice;
  const kernelsim::AppIdx a = slice.ids().app_of(uid(10001));
  const kernelsim::AppIdx b = slice.ids().app_of(uid(10002));
  const kernelsim::AppIdx c = slice.ids().app_of(uid(10003));
  const kernelsim::RoutineIdx render = slice.ids().routine_of("render");
  const kernelsim::RoutineIdx net = slice.ids().routine_of("net");
  slice.system_mj = 3.25;
  slice.screen_mj = 40.5;
  // Touch out of ascending order on purpose — seal() canonicalizes.
  slice.part_at(c, HwPart::kGps) += 0.75;
  slice.part_at(a, HwPart::kCpu) += 12.5;
  slice.part_at(a, HwPart::kWifi) += 1.125;
  slice.part_at(b, HwPart::kCamera) += 30.0;
  slice.part_at(b, HwPart::kAudio) += 2.5;
  slice.add_routine_at(a, net, 4.5);
  slice.add_routine_at(a, render, 8.0);
  slice.seal();
  return slice;
}

TEST(MeteringPipelineTest, TouchedViewAddressesTheSameCells) {
  const EnergySlice slice = make_slice();
  const EnergySlice::TouchedView view = slice.touched_view();
  ASSERT_EQ(view.active, &slice.active());
  for (const kernelsim::AppIdx idx : *view.active) {
    EXPECT_EQ(view.parts[0][idx], slice.cpu_mj(idx));
    EXPECT_EQ(view.parts[1][idx], slice.camera_mj(idx));
    EXPECT_EQ(view.parts[2][idx], slice.gps_mj(idx));
    EXPECT_EQ(view.parts[3][idx], slice.wifi_mj(idx));
    EXPECT_EQ(view.parts[4][idx], slice.audio_mj(idx));
  }
}

TEST(MeteringPipelineTest, TouchedViewAddressesSlabRows) {
  sim::MonotonicArena arena;
  EnergySlab slab(/*slots=*/3, arena);
  EnergySlice slice;
  slice.bind_slab(&slab, /*slot=*/1);
  const kernelsim::AppIdx a = slice.ids().app_of(uid(10001));
  const kernelsim::AppIdx b = slice.ids().app_of(uid(10007));
  slice.part_at(b, HwPart::kAudio) += 7.5;
  slice.part_at(a, HwPart::kCpu) += 1.5;
  slice.seal();
  const EnergySlice::TouchedView view = slice.touched_view();
  EXPECT_EQ(view.parts[0], slab.row(0, 1));
  EXPECT_EQ(view.parts[0][a], 1.5);
  EXPECT_EQ(view.parts[4][b], 7.5);
  EXPECT_EQ(view.parts[0][a], slice.cpu_mj(a));
  EXPECT_EQ(view.parts[4][b], slice.audio_mj(b));
}

/// Stage stub that records when it ran relative to the fused cell pass,
/// using the direct store's ground-truth sum as the witness.
struct RecordingStage : SliceFoldStage {
  const DirectStore* store = nullptr;
  std::vector<std::string> events;
  double total_at_prepare = -1.0;
  double total_at_fold = -1.0;

  void prepare_slice(const EnergySlice&) override {
    events.push_back("prepare");
    total_at_prepare = store->true_total_mj;
  }
  void fold_slice(const EnergySlice&) override {
    events.push_back("fold");
    total_at_fold = store->true_total_mj;
  }
};

TEST(MeteringPipelineTest, StagesBracketTheCellPass) {
  const EnergySlice slice = make_slice();
  DirectStore store;
  RecordingStage stage;
  stage.store = &store;
  MeteringPipeline pipeline;
  pipeline.set_engine(&store, &stage);
  pipeline.run(slice);

  ASSERT_EQ(stage.events, (std::vector<std::string>{"prepare", "fold"}));
  // prepare_slice ran before any cell was folded; fold_slice after all.
  EXPECT_EQ(stage.total_at_prepare, 0.0);
  EXPECT_EQ(stage.total_at_fold, slice.total_mj());
  EXPECT_EQ(pipeline.slices_folded(), 1u);
  EXPECT_EQ(pipeline.cells_folded(), slice.active().size());
}

TEST(MeteringPipelineTest, DirectStoreFoldIsBitIdenticalToTotalMj) {
  const EnergySlice slice = make_slice();
  DirectStore store;
  RecordingStage stage;
  stage.store = &store;
  MeteringPipeline pipeline;
  pipeline.set_engine(&store, &stage);
  pipeline.run(slice);
  pipeline.run(slice);  // accumulation across slices

  // EXACT equality: the pipeline must reproduce total_mj()'s association
  // (system+screen seed, then apps ascending) and the canonical part
  // order per cell — not merely be numerically close.
  EXPECT_EQ(store.true_total_mj, slice.total_mj() + slice.total_mj());
  const kernelsim::AppIdx a = slice.ids().find_app(uid(10001));
  ASSERT_LT(a, store.by_app.size());
  EXPECT_EQ(store.by_app[a].cpu_mj, slice.cpu_mj(a) + slice.cpu_mj(a));
  EXPECT_EQ(store.by_app[a].wifi_mj, slice.wifi_mj(a) + slice.wifi_mj(a));
  const kernelsim::RoutineIdx render = slice.ids().find_routine("render");
  EXPECT_EQ(store.by_app[a].routine_mj_of(render),
            slice.routine_mj_at(a, render) + slice.routine_mj_at(a, render));
  // Untouched app rows exist (dense) but hold zero.
  const kernelsim::AppIdx b = slice.ids().find_app(uid(10002));
  EXPECT_EQ(store.by_app[b].cpu_mj, 0.0);
  EXPECT_EQ(store.by_app[b].camera_mj,
            slice.camera_mj(b) + slice.camera_mj(b));
}

TEST(MeteringPipelineTest, DenseColumnFoldsMatchVirtualFolds) {
  // BatteryStats and PowerTutor fold as dense column sweeps in the fused
  // route — every cell, touched or not. The result must be EXACTLY the
  // virtual active-list fold: untouched cells are exact +0.0, so their
  // `+= +0.0` terms are bitwise no-ops.
  const EnergySlice slice = make_slice();
  framework::PackageManager packages;

  BatteryStats bs_virtual(packages);
  PowerTutor pt_virtual(packages);
  bs_virtual.on_slice(slice);
  pt_virtual.on_slice(slice);
  bs_virtual.on_slice(slice);  // accumulation across slices
  pt_virtual.on_slice(slice);

  BatteryStats bs_fused(packages);
  PowerTutor pt_fused(packages);
  MeteringPipeline pipeline;
  pipeline.set_battery_stats(&bs_fused);
  pipeline.set_power_tutor(&pt_fused);
  pipeline.run(slice);
  pipeline.run(slice);

  EXPECT_EQ(bs_fused.total_mj(), bs_virtual.total_mj());
  EXPECT_EQ(pt_fused.total_mj(), pt_virtual.total_mj());
  for (std::int32_t v = 10001; v <= 10003; ++v) {
    EXPECT_EQ(bs_fused.app_energy_mj(uid(v)),
              bs_virtual.app_energy_mj(uid(v)));
    EXPECT_EQ(pt_fused.app_energy_mj(uid(v)),
              pt_virtual.app_energy_mj(uid(v)));
    for (const HwPart part : {HwPart::kCpu, HwPart::kCamera, HwPart::kGps,
                              HwPart::kWifi, HwPart::kAudio}) {
      EXPECT_EQ(pt_fused.component_energy_mj(uid(v), part),
                pt_virtual.component_energy_mj(uid(v), part));
    }
  }
}

/// One phone, one deterministic workload, both metering routes.
std::string digest_with(bool fused) {
  Testbed bed({.seed = 7, .fused_metering = fused});
  apps::DemoAppSpec victim = apps::victim_spec();
  victim.package = "com.pipeline.victim";
  victim.foreground_cpu = 0.12;
  victim.service_cpu = 0.25;
  bed.install<DemoApp>(victim);
  bed.start();
  bed.server().user_launch("com.pipeline.victim");
  bed.context_of("com.pipeline.victim")
      .start_service(framework::Intent::explicit_for("com.pipeline.victim",
                                                     DemoApp::kService));
  bed.run_for(sim::seconds(30));
  return bed.energy_digest();
}

TEST(MeteringPipelineTest, FusedDigestMatchesVirtualBitForBit) {
  EXPECT_EQ(digest_with(true), digest_with(false));
}

TEST(MeteringPipelineTest, UnfusedSinksStillRunAfterThePipeline) {
  // A sink registered via add_sink (here: the timeline recorder, which
  // stays unfused) must see every slice on the fused route and record
  // exactly what it records on the virtual route.
  auto rows_with = [](bool fused) {
    Testbed bed({.seed = 11, .fused_metering = fused});
    apps::DemoAppSpec victim = apps::victim_spec();
    victim.package = "com.pipeline.victim";
    bed.install<DemoApp>(victim);
    TimelineRecorder timeline(bed.server().packages());
    bed.sampler().add_sink(&timeline);
    bed.start();
    bed.server().user_launch("com.pipeline.victim");
    bed.run_for(sim::seconds(10));
    return timeline.rows();
  };
  const auto fused = rows_with(true);
  const auto virt = rows_with(false);
  ASSERT_FALSE(fused.empty());
  ASSERT_EQ(fused.size(), virt.size());
  for (std::size_t i = 0; i < fused.size(); ++i) {
    EXPECT_EQ(fused[i].total_mj, virt[i].total_mj);
    EXPECT_EQ(fused[i].screen_mj, virt[i].screen_mj);
    EXPECT_EQ(fused[i].system_mj, virt[i].system_mj);
    EXPECT_EQ(fused[i].apps, virt[i].apps);
  }
}

TEST(MeteringPipelineTest, PipelineCountsSlicesAndCells) {
  Testbed bed({.seed = 3});
  apps::DemoAppSpec victim = apps::victim_spec();
  victim.package = "com.pipeline.victim";
  bed.install<DemoApp>(victim);
  bed.start();
  bed.server().user_launch("com.pipeline.victim");
  bed.run_for(sim::seconds(5));

  ASSERT_NE(bed.pipeline(), nullptr);
  EXPECT_EQ(bed.pipeline()->slices_folded(), bed.sampler().slices_emitted());
  EXPECT_GT(bed.pipeline()->cells_folded(), 0u);

  const obs::MetricsSnapshot snap = bed.metrics_snapshot();
  const obs::MetricRow* folds = snap.find("energy.pipeline.folds");
  ASSERT_NE(folds, nullptr);
  EXPECT_EQ(folds->count, bed.pipeline()->slices_folded());
  const obs::MetricRow* cells = snap.find("energy.pipeline.fused_cells");
  ASSERT_NE(cells, nullptr);
  EXPECT_EQ(cells->count, bed.pipeline()->cells_folded());

  // The virtual route constructs no pipeline at all.
  Testbed virt({.seed = 3, .fused_metering = false});
  EXPECT_EQ(virt.pipeline(), nullptr);
}

}  // namespace
}  // namespace eandroid::energy
