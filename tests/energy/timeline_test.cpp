#include "energy/timeline.h"

#include <gtest/gtest.h>

#include <sstream>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace eandroid::energy {
namespace {

using apps::DemoApp;
using apps::Testbed;

TEST(TimelineTest, RecordsOneRowPerSlice) {
  Testbed bed;
  TimelineRecorder recorder(bed.server().packages());
  bed.sampler().add_sink(&recorder);
  bed.start();
  bed.sim().run_for(sim::seconds(2));  // 8 slices at 250 ms
  EXPECT_EQ(recorder.rows().size(), 8u);
  EXPECT_NEAR(recorder.rows().back().t_seconds, 2.0, 1e-9);
}

TEST(TimelineTest, RowsCaptureForegroundAndAppEnergy) {
  Testbed bed;
  TimelineRecorder recorder(bed.server().packages());
  bed.sampler().add_sink(&recorder);
  bed.install<DemoApp>(apps::message_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(1));
  const auto& row = recorder.rows().back();
  EXPECT_EQ(row.foreground, "com.example.message");
  ASSERT_FALSE(row.apps.empty());
  EXPECT_EQ(row.apps[0].first, "com.example.message");
  EXPECT_GT(row.apps[0].second, 0.0);
  EXPECT_TRUE(row.screen_on);
}

TEST(TimelineTest, MaxRowsCapDropsExcess) {
  Testbed bed;
  TimelineRecorder recorder(bed.server().packages(), /*max_rows=*/3);
  bed.sampler().add_sink(&recorder);
  bed.start();
  bed.sim().run_for(sim::seconds(2));
  EXPECT_EQ(recorder.rows().size(), 3u);
  EXPECT_EQ(recorder.dropped(), 5u);
}

TEST(TimelineTest, CsvHasHeaderAndPseudoRows) {
  Testbed bed;
  TimelineRecorder recorder(bed.server().packages());
  bed.sampler().add_sink(&recorder);
  bed.start();
  bed.run_for(sim::millis(250));
  std::ostringstream os;
  recorder.write_csv(os);
  const std::string csv = os.str();
  EXPECT_NE(csv.find("t_seconds,consumer,energy_mj"), std::string::npos);
  EXPECT_NE(csv.find(",Screen,"), std::string::npos);
  EXPECT_NE(csv.find(",AndroidOS,"), std::string::npos);
}

TEST(TimelineTest, CsvEnergySumsMatchBattery) {
  Testbed bed;
  TimelineRecorder recorder(bed.server().packages());
  bed.sampler().add_sink(&recorder);
  bed.install<DemoApp>(apps::message_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(3));
  double total = 0.0;
  for (const auto& row : recorder.rows()) total += row.total_mj;
  EXPECT_NEAR(total, bed.server().battery().drained_mj(), 1e-6);
}

TEST(TimelineTest, ClearResets) {
  Testbed bed;
  TimelineRecorder recorder(bed.server().packages(), 1);
  bed.sampler().add_sink(&recorder);
  bed.start();
  bed.sim().run_for(sim::seconds(1));
  recorder.clear();
  EXPECT_TRUE(recorder.rows().empty());
  EXPECT_EQ(recorder.dropped(), 0u);
}

TEST(TimelineTest, ForcedScreenFlagAppearsInTrace) {
  Testbed bed;
  TimelineRecorder recorder(bed.server().packages());
  bed.sampler().add_sink(&recorder);
  auto* malware = bed.install<apps::WakelockMalware>();
  bed.start();
  (void)bed.context_of(apps::WakelockMalware::kPackage);
  malware->attack();
  bed.run_for(sim::minutes(1));
  bool saw_forced = false;
  for (const auto& row : recorder.rows()) saw_forced |= row.screen_forced;
  EXPECT_TRUE(saw_forced);
}

}  // namespace
}  // namespace eandroid::energy
