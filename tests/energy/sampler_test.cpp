#include "energy/sampler.h"

#include <gtest/gtest.h>

#include <memory>

#include "framework/system_server.h"
#include "sim/simulator.h"
#include "tests/framework/helpers.h"

namespace eandroid::energy {
namespace {

using framework::testing::RecordingApp;
using framework::testing::simple_manifest;

/// Sink that accumulates raw slices for inspection.
class CollectingSink : public AccountingSink {
 public:
  void on_slice(const EnergySlice& slice) override {
    slices.push_back(slice);
    total_mj += slice.total_mj();
  }
  std::vector<EnergySlice> slices;
  double total_mj = 0.0;
};

class SamplerTest : public ::testing::Test {
 protected:
  SamplerTest() : server_(sim_), sampler_(server_, sim::millis(250)) {
    framework::Manifest m = simple_manifest("com.app");
    m.permissions.push_back(framework::Permission::kWakeLock);
    server_.install(std::move(m), std::make_unique<RecordingApp>());
    server_.boot();
    sampler_.add_sink(&sink_);
    sampler_.start();
  }

  kernelsim::Uid uid() { return server_.packages().find("com.app")->uid; }
  framework::Context& ctx() {
    server_.ensure_process(uid());
    return server_.context_of(uid());
  }

  sim::Simulator sim_;
  framework::SystemServer server_;
  EnergySampler sampler_;
  CollectingSink sink_;
};

TEST_F(SamplerTest, EmitsOneSlicePerPeriod) {
  sim_.run_for(sim::seconds(1));
  EXPECT_EQ(sink_.slices.size(), 4u);
  EXPECT_EQ(sampler_.slices_emitted(), 4u);
}

TEST_F(SamplerTest, SliceWindowsAreContiguous) {
  sim_.run_for(sim::seconds(1));
  for (std::size_t i = 1; i < sink_.slices.size(); ++i) {
    EXPECT_EQ(sink_.slices[i].begin, sink_.slices[i - 1].end);
  }
}

TEST_F(SamplerTest, BatteryDrainMatchesSliceTotals) {
  ctx().set_cpu_load("x", 0.5);
  sim_.run_for(sim::seconds(10));
  sampler_.flush();
  EXPECT_NEAR(server_.battery().drained_mj(), sink_.total_mj, 1e-6);
}

TEST_F(SamplerTest, IdleAwakeDrawsBaseline) {
  sim_.run_for(sim::millis(250));
  ASSERT_FALSE(sink_.slices.empty());
  const EnergySlice& slice = sink_.slices.front();
  // 250 ms of idle CPU + screen at default brightness.
  const auto& p = server_.params();
  const double expected_cpu = p.cpu_idle_awake_mw * 0.25;
  const double expected_screen =
      (p.screen_base_mw + 102 * p.screen_per_level_mw) * 0.25;
  EXPECT_NEAR(slice.system_mj, expected_cpu, 1e-6);
  EXPECT_NEAR(slice.screen_mj, expected_screen, 1e-6);
  EXPECT_TRUE(slice.screen_on);
}

TEST_F(SamplerTest, CpuLoadAttributedToApp) {
  ctx().set_cpu_load("x", 0.4);
  sink_.slices.clear();
  sim_.run_for(sim::millis(250));
  ASSERT_FALSE(sink_.slices.empty());
  const EnergySlice& slice = sink_.slices.back();
  const double expected = server_.params().cpu_active_mw * 0.4 * 0.25;
  const kernelsim::AppIdx idx = slice.ids().find_app(uid());
  ASSERT_NE(idx, kernelsim::kNoIdx);
  ASSERT_TRUE(slice.active_at(idx));
  EXPECT_NEAR(slice.cpu_mj(idx), expected, 1e-6);
}

TEST_F(SamplerTest, CameraSessionAttributedToApp) {
  const hw::SessionId session = ctx().camera_begin();
  sink_.slices.clear();
  sim_.run_for(sim::millis(250));
  const EnergySlice& slice = sink_.slices.back();
  const kernelsim::AppIdx idx = slice.ids().find_app(uid());
  ASSERT_NE(idx, kernelsim::kNoIdx);
  ASSERT_TRUE(slice.active_at(idx));
  EXPECT_NEAR(slice.camera_mj(idx), server_.params().camera_active_mw * 0.25,
              1e-6);
  ctx().camera_end(session);
}

TEST_F(SamplerTest, SuspendedDeviceDrawsAlmostNothing) {
  sim_.run_for(sim::minutes(1));  // screen times out, device suspends
  ASSERT_TRUE(server_.power().suspended());
  sink_.slices.clear();
  sim_.run_for(sim::millis(250));
  const EnergySlice& slice = sink_.slices.back();
  EXPECT_NEAR(slice.total_mj(), server_.params().cpu_suspend_mw * 0.25, 1e-6);
  EXPECT_FALSE(slice.screen_on);
  EXPECT_DOUBLE_EQ(slice.screen_mj, 0.0);
}

TEST_F(SamplerTest, ForcedScreenFlagReachesSlices) {
  ctx().acquire_wakelock(framework::WakelockType::kScreenBright, "t");
  sim_.run_for(sim::minutes(1));
  sink_.slices.clear();
  sim_.run_for(sim::millis(250));
  const EnergySlice& slice = sink_.slices.back();
  EXPECT_TRUE(slice.screen_forced_by_wakelock);
  ASSERT_EQ(slice.screen_wakelock_owners.size(), 1u);
  EXPECT_EQ(slice.screen_wakelock_owners[0], uid());
}

TEST_F(SamplerTest, FlushClosesPartialWindow) {
  sim_.run_for(sim::millis(100));  // not a full period
  EXPECT_TRUE(sink_.slices.empty());
  sampler_.flush();
  ASSERT_EQ(sink_.slices.size(), 1u);
  EXPECT_EQ(sink_.slices[0].length(), sim::millis(100));
}

TEST_F(SamplerTest, StopHaltsEmission) {
  sim_.run_for(sim::millis(500));
  const std::size_t n = sink_.slices.size();
  sampler_.stop();
  sim_.run_for(sim::seconds(2));
  EXPECT_EQ(sink_.slices.size(), n);
}

TEST_F(SamplerTest, ForegroundUidRecorded) {
  server_.user_launch("com.app");
  sink_.slices.clear();
  sim_.run_for(sim::millis(250));
  EXPECT_EQ(sink_.slices.back().foreground, uid());
}

}  // namespace
}  // namespace eandroid::energy
