#include "energy/power_signature.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"

namespace eandroid::energy {
namespace {

using apps::DemoApp;
using apps::Testbed;
using framework::Intent;

TEST(PowerSignatureTest, FlagsDirectEnergyHog) {
  Testbed bed;
  apps::DemoAppSpec hog = apps::message_spec();
  hog.package = "com.hog";
  hog.foreground_cpu = 0.8;  // a busy-loop worm, in effect
  bed.install<DemoApp>(hog);
  PowerSignatureDetector detector(bed.server().packages());
  bed.sampler().add_sink(&detector);
  bed.start();
  bed.server().user_launch("com.hog");
  bed.run_for(sim::seconds(30));

  const auto suspects = detector.suspects(200.0);
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects[0].package, "com.hog");
  EXPECT_GT(suspects[0].average_mw, 200.0);
  EXPECT_GE(suspects[0].peak_mw, suspects[0].average_mw);
}

TEST(PowerSignatureTest, QuietAppsNotFlagged) {
  Testbed bed;
  bed.install<DemoApp>(apps::contacts_spec());
  PowerSignatureDetector detector(bed.server().packages());
  bed.sampler().add_sink(&detector);
  bed.start();
  bed.server().user_launch("com.example.contacts");
  bed.run_for(sim::seconds(30));
  EXPECT_TRUE(detector.suspects(200.0).empty());
}

TEST(PowerSignatureTest, MissesCollateralAttackerButEAndroidCatchesIt) {
  // The paper's §VII claim, reproduced end to end: under attack #3 the
  // signature detector flags the *victim* (whose pinned service burns
  // power) and not the malware, while E-Android ranks the malware.
  Testbed bed;
  apps::DemoAppSpec victim = apps::victim_spec();
  victim.wakelock_bug = false;
  victim.exit_dialog = false;
  bed.install<DemoApp>(victim);
  bed.install<apps::BinderMalware>(victim.package, DemoApp::kService);
  PowerSignatureDetector detector(bed.server().packages());
  bed.sampler().add_sink(&detector);
  bed.start();

  bed.context_of(apps::BinderMalware::kPackage);
  bed.server().user_launch(victim.package);
  bed.context_of(victim.package)
      .start_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.sim().run_for(sim::seconds(1));
  bed.context_of(victim.package)
      .stop_service(Intent::explicit_for(victim.package, DemoApp::kService));
  bed.server().user_press_home();
  for (int i = 0; i < 3; ++i) {
    bed.sim().run_for(sim::seconds(20));
    bed.server().user_tap(10, 10);
  }
  bed.run_for(sim::Duration(0));

  const auto suspects = detector.suspects(100.0);
  ASSERT_FALSE(suspects.empty());
  EXPECT_EQ(suspects[0].package, victim.package);  // wrong culprit
  for (const auto& suspect : suspects) {
    EXPECT_NE(suspect.package, apps::BinderMalware::kPackage);
  }
  // E-Android's collateral map names the real driver.
  EXPECT_GT(bed.eandroid()->engine().collateral_mj(
                bed.uid_of(apps::BinderMalware::kPackage)),
            0.0);
}

TEST(PowerSignatureTest, AverageTracksObservationWindow) {
  Testbed bed;
  apps::DemoAppSpec app = apps::message_spec();
  app.package = "com.avg";
  app.foreground_cpu = 0.5;
  bed.install<DemoApp>(app);
  PowerSignatureDetector detector(bed.server().packages());
  bed.sampler().add_sink(&detector);
  bed.start();
  bed.server().user_launch("com.avg");
  bed.run_for(sim::seconds(10));
  // 0.5 duty * 1000 mW = 500 mW while observed.
  EXPECT_NEAR(detector.average_mw_of(bed.uid_of("com.avg")), 500.0, 5.0);
  EXPECT_NEAR(detector.observation_seconds(), 10.0, 0.3);
}

TEST(PowerSignatureTest, ResetClears) {
  Testbed bed;
  PowerSignatureDetector detector(bed.server().packages());
  bed.sampler().add_sink(&detector);
  bed.start();
  bed.run_for(sim::seconds(2));
  detector.reset();
  EXPECT_DOUBLE_EQ(detector.observation_seconds(), 0.0);
  EXPECT_TRUE(detector.suspects(0.0).empty());
}

}  // namespace
}  // namespace eandroid::energy
