#include "energy/eprof.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"

namespace eandroid::energy {
namespace {

using apps::DemoApp;
using apps::Testbed;

class EprofTest : public ::testing::Test {
 protected:
  EprofTest() : eprof_(bed_.server().packages()) {
    apps::DemoAppSpec spec = apps::victim_spec();
    spec.package = "com.eprof.app";
    spec.wakelock_bug = false;
    spec.exit_dialog = false;
    spec.foreground_cpu = 0.10;  // DemoApp tags this "activity"
    spec.service_cpu = 0.30;     // and this "service"
    bed_.install<DemoApp>(spec);
    bed_.sampler().add_sink(&eprof_);
    bed_.start();
  }
  Testbed bed_;
  Eprof eprof_;
};

TEST_F(EprofTest, SplitsEnergyByRoutine) {
  bed_.server().user_launch("com.eprof.app");
  bed_.context_of("com.eprof.app")
      .start_service(
          framework::Intent::explicit_for("com.eprof.app", DemoApp::kService));
  bed_.run_for(sim::seconds(10));
  const kernelsim::Uid uid = bed_.uid_of("com.eprof.app");
  const double activity = eprof_.routine_mj(uid, "activity");
  const double service = eprof_.routine_mj(uid, "service");
  EXPECT_GT(activity, 0.0);
  EXPECT_GT(service, 0.0);
  // 0.30 vs 0.10 duty -> 3:1 energy split.
  EXPECT_NEAR(service / activity, 3.0, 0.05);
}

TEST_F(EprofTest, RoutineSumMatchesAppCpuEnergy) {
  bed_.server().user_launch("com.eprof.app");
  bed_.run_for(sim::seconds(5));
  const kernelsim::Uid uid = bed_.uid_of("com.eprof.app");
  // Eprof's per-routine total equals the profilers' per-app CPU total.
  EXPECT_NEAR(eprof_.app_cpu_mj(uid),
              bed_.battery_stats().app_energy_mj(uid), 1e-6);
}

TEST_F(EprofTest, IpcBurstsLandUnderIpcRoutine) {
  bed_.server().user_launch("com.eprof.app");
  bed_.context_of("com.eprof.app").cpu_burst(sim::millis(100));
  bed_.run_for(sim::seconds(1));
  EXPECT_GT(eprof_.routine_mj(bed_.uid_of("com.eprof.app"), "ipc"), 0.0);
}

TEST_F(EprofTest, ProfileSortedWithPercents) {
  bed_.server().user_launch("com.eprof.app");
  bed_.context_of("com.eprof.app")
      .start_service(
          framework::Intent::explicit_for("com.eprof.app", DemoApp::kService));
  bed_.run_for(sim::seconds(10));
  const auto profile = eprof_.profile_of(bed_.uid_of("com.eprof.app"));
  ASSERT_GE(profile.size(), 2u);
  EXPECT_EQ(profile[0].routine, "service");  // the hog is first
  double percent_sum = 0.0;
  for (const auto& entry : profile) percent_sum += entry.percent_of_app;
  EXPECT_NEAR(percent_sum, 100.0, 1e-6);
}

TEST_F(EprofTest, UnknownAppIsEmpty) {
  EXPECT_TRUE(eprof_.profile_of(kernelsim::Uid{42}).empty());
  EXPECT_DOUBLE_EQ(eprof_.app_cpu_mj(kernelsim::Uid{42}), 0.0);
}

TEST_F(EprofTest, RenderNamesRoutines) {
  bed_.server().user_launch("com.eprof.app");
  bed_.run_for(sim::seconds(2));
  const std::string text = eprof_.render(bed_.uid_of("com.eprof.app"));
  EXPECT_NE(text.find("com.eprof.app"), std::string::npos);
  EXPECT_NE(text.find("activity"), std::string::npos);
}

TEST_F(EprofTest, ResetClears) {
  bed_.server().user_launch("com.eprof.app");
  bed_.run_for(sim::seconds(2));
  eprof_.reset();
  EXPECT_DOUBLE_EQ(eprof_.app_cpu_mj(bed_.uid_of("com.eprof.app")), 0.0);
}

}  // namespace
}  // namespace eandroid::energy
