// Tests for the two baseline profilers: Android BatteryStats (screen as
// its own row) and PowerTutor (screen billed to the foreground app) —
// including the blindness to collateral effects the paper exploits.
#include <gtest/gtest.h>

#include "energy/battery_stats.h"
#include "energy/power_tutor.h"

#include "framework/package_manager.h"
#include "tests/framework/helpers.h"

namespace eandroid::energy {
namespace {

using framework::testing::simple_manifest;

class ProfilersTest : public ::testing::Test {
 protected:
  ProfilersTest() : stats_(packages_), tutor_(packages_) {
    uid_a_ = packages_.install(simple_manifest("com.a"), nullptr);
    uid_b_ = packages_.install(simple_manifest("com.b"), nullptr);
  }

  EnergySlice make_slice(double a_cpu, double b_cpu, double screen,
                         kernelsim::Uid foreground) {
    // All slices share the fixture's table: the dense sinks key their
    // accumulators on stable app indices across slices.
    EnergySlice slice(ids_);
    slice.begin = sim::TimePoint(0);
    slice.end = sim::TimePoint(250'000);
    if (a_cpu > 0) slice.part(uid_a_, HwPart::kCpu) = a_cpu;
    if (b_cpu > 0) slice.part(uid_b_, HwPart::kCpu) = b_cpu;
    slice.screen_mj = screen;
    slice.screen_on = screen > 0;
    slice.foreground = foreground;
    slice.system_mj = 10.0;
    slice.seal();
    return slice;
  }

  kernelsim::IdTable ids_;
  framework::PackageManager packages_;
  BatteryStats stats_;
  PowerTutor tutor_;
  kernelsim::Uid uid_a_, uid_b_;
};

TEST_F(ProfilersTest, BatteryStatsAccumulatesPerApp) {
  stats_.on_slice(make_slice(100, 50, 200, uid_a_));
  stats_.on_slice(make_slice(100, 0, 200, uid_a_));
  EXPECT_DOUBLE_EQ(stats_.app_energy_mj(uid_a_), 200.0);
  EXPECT_DOUBLE_EQ(stats_.app_energy_mj(uid_b_), 50.0);
}

TEST_F(ProfilersTest, BatteryStatsScreenIsSeparateRow) {
  stats_.on_slice(make_slice(100, 0, 200, uid_a_));
  EXPECT_DOUBLE_EQ(stats_.screen_energy_mj(), 200.0);
  const BatteryView view = stats_.view();
  EXPECT_DOUBLE_EQ(view.energy_of("Screen"), 200.0);
  EXPECT_DOUBLE_EQ(view.energy_of("com.a"), 100.0);  // no screen inside
}

TEST_F(ProfilersTest, BatteryStatsTotalsConserve) {
  stats_.on_slice(make_slice(100, 50, 200, uid_a_));
  EXPECT_DOUBLE_EQ(stats_.total_mj(), 100 + 50 + 200 + 10);
}

TEST_F(ProfilersTest, ViewSortedByEnergyWithPercents) {
  stats_.on_slice(make_slice(100, 300, 50, uid_a_));
  const BatteryView view = stats_.view();
  ASSERT_GE(view.rows.size(), 2u);
  EXPECT_EQ(view.rows[0].label, "com.b");
  double percent_sum = 0.0;
  for (const auto& row : view.rows) percent_sum += row.percent;
  EXPECT_NEAR(percent_sum, 100.0, 1e-9);
}

TEST_F(ProfilersTest, PowerTutorChargesScreenToForeground) {
  tutor_.on_slice(make_slice(100, 50, 200, uid_a_));
  EXPECT_DOUBLE_EQ(tutor_.app_energy_mj(uid_a_), 300.0);
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_a_, HwPart::kScreen), 200.0);
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_a_, HwPart::kCpu), 100.0);
  EXPECT_DOUBLE_EQ(tutor_.app_energy_mj(uid_b_), 50.0);
}

TEST_F(ProfilersTest, PowerTutorScreenFollowsForegroundChanges) {
  tutor_.on_slice(make_slice(0, 0, 100, uid_a_));
  tutor_.on_slice(make_slice(0, 0, 100, uid_b_));
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_a_, HwPart::kScreen), 100.0);
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_b_, HwPart::kScreen), 100.0);
}

TEST_F(ProfilersTest, PowerTutorUnattributedScreenWithoutForeground) {
  tutor_.on_slice(make_slice(0, 0, 100, kernelsim::Uid{}));
  EXPECT_DOUBLE_EQ(tutor_.total_mj(), 110.0);
  const BatteryView view = tutor_.view();
  EXPECT_DOUBLE_EQ(view.energy_of("Screen"), 100.0);
}

TEST_F(ProfilersTest, PowerTutorComponentBreakdown) {
  EnergySlice slice = make_slice(0, 0, 0, uid_a_);
  slice.part(uid_a_, HwPart::kCamera) = 30;
  slice.part(uid_a_, HwPart::kGps) = 20;
  slice.part(uid_a_, HwPart::kWifi) = 10;
  slice.part(uid_a_, HwPart::kAudio) = 5;
  slice.seal();
  tutor_.on_slice(slice);
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_a_, HwPart::kCamera), 30.0);
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_a_, HwPart::kGps), 20.0);
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_a_, HwPart::kWifi), 10.0);
  EXPECT_DOUBLE_EQ(tutor_.component_energy_mj(uid_a_, HwPart::kAudio), 5.0);
}

TEST_F(ProfilersTest, ResetClearsBoth) {
  stats_.on_slice(make_slice(100, 50, 200, uid_a_));
  tutor_.on_slice(make_slice(100, 50, 200, uid_a_));
  stats_.reset();
  tutor_.reset();
  EXPECT_DOUBLE_EQ(stats_.total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(tutor_.total_mj(), 0.0);
}

TEST_F(ProfilersTest, BothProfilersAgreeOnGrandTotal) {
  const EnergySlice slice = make_slice(123, 45, 67, uid_b_);
  stats_.on_slice(slice);
  tutor_.on_slice(slice);
  EXPECT_DOUBLE_EQ(stats_.total_mj(), tutor_.total_mj());
}

TEST_F(ProfilersTest, ViewRendersAllRows) {
  stats_.on_slice(make_slice(100, 50, 200, uid_a_));
  const std::string text = stats_.view().render("test");
  EXPECT_NE(text.find("com.a"), std::string::npos);
  EXPECT_NE(text.find("com.b"), std::string::npos);
  EXPECT_NE(text.find("Screen"), std::string::npos);
  EXPECT_NE(text.find("Android OS"), std::string::npos);
}

}  // namespace
}  // namespace eandroid::energy
