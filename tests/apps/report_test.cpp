#include "apps/report.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"
#include "energy/eprof.h"
#include "energy/power_signature.h"

namespace eandroid::apps {
namespace {

TEST(ReportTest, ContainsAllSectionsWhenEnabled) {
  Testbed bed;
  energy::Eprof eprof(bed.server().packages());
  energy::PowerSignatureDetector detector(bed.server().packages());
  bed.sampler().add_sink(&eprof);
  bed.sampler().add_sink(&detector);
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(
          framework::Intent::implicit("android.media.action.VIDEO_CAPTURE"));
  bed.run_for(sim::seconds(20));

  const std::string report = render_device_report(bed, &eprof, &detector);
  EXPECT_NE(report.find("device report"), std::string::npos);
  EXPECT_NE(report.find("battery:"), std::string::npos);
  EXPECT_NE(report.find("Android BatteryStats"), std::string::npos);
  EXPECT_NE(report.find("PowerTutor"), std::string::npos);
  EXPECT_NE(report.find("collateral accounting"), std::string::npos);
  EXPECT_NE(report.find("open collateral windows: 1"), std::string::npos);
  EXPECT_NE(report.find("eprof"), std::string::npos);
  EXPECT_NE(report.find("power-signature suspects"), std::string::npos);
}

TEST(ReportTest, SectionsCanBeDisabled) {
  Testbed bed;
  bed.start();
  bed.run_for(sim::seconds(1));
  ReportOptions options;
  options.include_android_view = false;
  options.include_powertutor_view = false;
  options.include_open_windows = false;
  const std::string report =
      render_device_report(bed, nullptr, nullptr, options);
  EXPECT_EQ(report.find("Android BatteryStats"), std::string::npos);
  EXPECT_EQ(report.find("PowerTutor"), std::string::npos);
  EXPECT_EQ(report.find("open collateral windows"), std::string::npos);
  EXPECT_NE(report.find("collateral accounting"), std::string::npos);
}

TEST(ReportTest, ReflectsChargerAndForcedScreen) {
  Testbed bed;
  auto* malware = bed.install<WakelockMalware>();
  bed.start();
  (void)bed.context_of(WakelockMalware::kPackage);
  malware->attack();
  bed.server().plug_charger();
  bed.run_for(sim::minutes(1));
  const std::string report = render_device_report(bed);
  EXPECT_NE(report.find("charging"), std::string::npos);
  EXPECT_NE(report.find("forced by wakelock"), std::string::npos);
}

}  // namespace
}  // namespace eandroid::apps
