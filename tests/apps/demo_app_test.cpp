#include "apps/demo_app.h"

#include <gtest/gtest.h>

#include "apps/testbed.h"

namespace eandroid::apps {
namespace {

using framework::Intent;

TEST(DemoAppTest, ManifestMatchesSpec) {
  const DemoAppSpec spec = victim_spec();
  DemoApp app(spec);
  const framework::Manifest m = app.manifest();
  EXPECT_EQ(m.package, spec.package);
  ASSERT_FALSE(m.activities.empty());
  EXPECT_EQ(m.activities[0].name, DemoApp::kRootActivity);
  ASSERT_EQ(m.services.size(), 1u);
  EXPECT_EQ(m.services[0].name, DemoApp::kService);
  EXPECT_TRUE(m.services[0].exported);
  // The wakelock bug implies the permission.
  EXPECT_TRUE(m.has_permission(framework::Permission::kWakeLock));
}

TEST(DemoAppTest, ForegroundCpuLoadAppliesAndClears) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(), 0.08, 1e-9);
  bed.server().user_press_home();
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(), 0.0, 1e-9);
}

TEST(DemoAppTest, BackgroundCpuPersistsAfterStop) {
  DemoAppSpec spec = message_spec();
  spec.background_cpu = 0.2;
  Testbed bed;
  bed.install<DemoApp>(spec);
  bed.start();
  bed.server().user_launch(spec.package);
  bed.server().user_press_home();
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(), 0.2, 1e-9);
}

TEST(DemoAppTest, CameraSessionFollowsForeground) {
  Testbed bed;
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.camera");
  EXPECT_TRUE(bed.server().camera().active());
  bed.server().user_press_home();
  EXPECT_FALSE(bed.server().camera().active());
}

TEST(DemoAppTest, CameraAutoFinishesAfterCapture) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.context_of("com.example.message")
      .start_activity(Intent::implicit("android.media.action.VIDEO_CAPTURE"));
  EXPECT_EQ(bed.server().activities().foreground_uid(),
            bed.uid_of("com.example.camera"));
  bed.sim().run_for(sim::seconds(31));
  // The capture returned; Message is foreground again.
  EXPECT_EQ(bed.server().activities().foreground_uid(),
            bed.uid_of("com.example.message"));
  EXPECT_FALSE(bed.server().camera().active());
}

TEST(DemoAppTest, WakelockBugAcquiresOnCreateLeaksOnStop) {
  Testbed bed;
  DemoApp* victim = bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  EXPECT_TRUE(victim->holds_wakelock());
  bed.server().user_press_home();  // onStop: NOT released (the bug)
  EXPECT_TRUE(victim->holds_wakelock());
  EXPECT_EQ(bed.server().power().held_count(), 1u);
}

TEST(DemoAppTest, WakelockReleasedOnDestroy) {
  Testbed bed;
  DemoApp* victim = bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.context_of("com.example.victim").finish_activity(DemoApp::kRootActivity);
  EXPECT_FALSE(victim->holds_wakelock());
  EXPECT_EQ(bed.server().power().held_count(), 0u);
}

TEST(DemoAppTest, ExitDialogFlowDestroysOnOk) {
  Testbed bed;
  DemoApp* victim = bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.server().user_press_back();
  // Dialog shown; app still alive.
  ASSERT_NE(bed.server().windows().top_dialog(), nullptr);
  EXPECT_EQ(bed.server().activities().activity_state("com.example.victim",
                                                     DemoApp::kRootActivity),
            framework::ActivityRecord::State::kResumed);
  bed.server().user_tap(540, 960);  // OK
  EXPECT_EQ(bed.server().activities().activity_state("com.example.victim",
                                                     DemoApp::kRootActivity),
            framework::ActivityRecord::State::kDestroyed);
  EXPECT_FALSE(victim->holds_wakelock());  // proper exit releases
}

TEST(DemoAppTest, ExitDialogCancelKeepsRunning) {
  Testbed bed;
  bed.install<DemoApp>(victim_spec());
  bed.start();
  bed.server().user_launch("com.example.victim");
  bed.server().user_press_back();
  bed.server().user_tap(10, 10);  // outside OK
  EXPECT_EQ(bed.server().activities().activity_state("com.example.victim",
                                                     DemoApp::kRootActivity),
            framework::ActivityRecord::State::kResumed);
}

TEST(DemoAppTest, ServiceLoadFollowsServiceLifecycle) {
  Testbed bed;
  DemoAppSpec spec = victim_spec();
  bed.install<DemoApp>(spec);
  bed.start();
  bed.context_of(spec.package)
      .start_service(Intent::explicit_for(spec.package, DemoApp::kService));
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(),
              spec.service_cpu, 1e-9);
  bed.context_of(spec.package)
      .stop_service(Intent::explicit_for(spec.package, DemoApp::kService));
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(), 0.0, 1e-9);
}

TEST(DemoAppTest, MusicUsesAudioWhileForeground) {
  Testbed bed;
  bed.install<DemoApp>(music_spec());
  bed.start();
  bed.server().user_launch("com.example.music");
  EXPECT_TRUE(bed.server().audio().active());
  bed.server().user_press_home();
  EXPECT_FALSE(bed.server().audio().active());
}

}  // namespace
}  // namespace eandroid::apps
