#include "apps/testbed.h"

#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/malware.h"

namespace eandroid::apps {
namespace {

TEST(TestbedTest, WithoutEAndroidIsStockAndroid) {
  TestbedOptions options;
  options.with_eandroid = false;
  Testbed bed(options);
  bed.start();
  EXPECT_EQ(bed.eandroid(), nullptr);
  bed.run_for(sim::seconds(1));
  EXPECT_GT(bed.battery_stats().total_mj(), 0.0);
}

TEST(TestbedTest, ContextOfSpawnsProcess) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.start();
  EXPECT_FALSE(bed.server().pid_of(bed.uid_of("com.example.message")).valid());
  bed.context_of("com.example.message");
  EXPECT_TRUE(bed.server().pid_of(bed.uid_of("com.example.message")).valid());
}

TEST(TestbedTest, UidOfUnknownPackageInvalid) {
  Testbed bed;
  bed.start();
  EXPECT_FALSE(bed.uid_of("com.missing").valid());
}

TEST(TestbedTest, ResetStatsClearsAccumulationsKeepsWindows) {
  Testbed bed;
  DemoAppSpec victim = victim_spec();
  victim.wakelock_bug = false;
  victim.exit_dialog = false;
  bed.install<DemoApp>(victim);
  bed.install<BinderMalware>(victim.package, DemoApp::kService);
  bed.start();
  (void)bed.context_of(BinderMalware::kPackage);
  bed.context_of(victim.package)
      .start_service(framework::Intent::explicit_for(victim.package,
                                                     DemoApp::kService));
  bed.run_for(sim::seconds(5));  // malware binds; energy accrues
  ASSERT_GT(bed.battery_stats().total_mj(), 0.0);
  ASSERT_EQ(bed.eandroid()->tracker().open_count(), 1u);

  bed.reset_stats();
  EXPECT_DOUBLE_EQ(bed.battery_stats().total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(bed.power_tutor().total_mj(), 0.0);
  EXPECT_DOUBLE_EQ(bed.eandroid()->engine().true_total_mj(), 0.0);
  // The open attack window survives and keeps attributing new energy.
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 1u);
  bed.run_for(sim::seconds(20));
  EXPECT_GT(bed.eandroid()->engine().collateral_mj(
                bed.uid_of(BinderMalware::kPackage)),
            0.0);
}

TEST(TestbedTest, SamplePeriodOptionHonoured) {
  TestbedOptions options;
  options.sample_period = sim::seconds(1);
  Testbed bed(options);
  bed.start();
  bed.sim().run_for(sim::seconds(10));
  EXPECT_EQ(bed.sampler().slices_emitted(), 10u);
}

TEST(TestbedTest, CustomParamsFlowThrough) {
  TestbedOptions options;
  options.params.screen_base_mw = 500.0;
  Testbed bed(options);
  bed.start();
  EXPECT_DOUBLE_EQ(bed.server().params().screen_base_mw, 500.0);
}

}  // namespace
}  // namespace eandroid::apps
