// run_chaos: a randomized fault schedule over the scenario workload must
// end in a consistent device, and the whole run must be a pure function
// of its seed.
#include <gtest/gtest.h>

#include "apps/chaos.h"

namespace eandroid::apps {
namespace {

ChaosOptions small_options(std::uint64_t seed) {
  ChaosOptions options;
  options.seed = seed;
  options.workload_steps = 60;
  options.fault_count = 8;
  options.horizon = sim::seconds(40);
  return options;
}

TEST(ChaosTest, RunIsDeterministic) {
  const ChaosResult a = run_chaos(small_options(7));
  const ChaosResult b = run_chaos(small_options(7));
  EXPECT_EQ(a.digest(), b.digest());
  EXPECT_EQ(a.plan, b.plan);
}

TEST(ChaosTest, RunHoldsInvariants) {
  const ChaosResult result = run_chaos(small_options(3));
  EXPECT_TRUE(result.ok()) << result.digest();
  EXPECT_GT(result.faults_injected, 0u);
  EXPECT_EQ(result.workload_steps, 60u);
  EXPECT_GE(result.windows_opened, result.windows_closed);
}

TEST(ChaosTest, DifferentSeedsDiverge) {
  EXPECT_NE(run_chaos(small_options(1)).digest(),
            run_chaos(small_options(2)).digest());
}

}  // namespace
}  // namespace eandroid::apps
