// The extended stock-app cast, including the paper's benign-collateral
// story: legitimate apps boost brightness in the foreground, and
// E-Android charges them the delta — accurate accounting, not an alarm.
#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"

namespace eandroid::apps {
namespace {

TEST(StockAppsTest, BrowserUsesWifiWhileForeground) {
  Testbed bed;
  bed.install<DemoApp>(browser_spec());
  bed.start();
  bed.server().user_launch("com.example.browser");
  EXPECT_TRUE(bed.server().wifi().active());
  bed.server().user_press_home();
  EXPECT_FALSE(bed.server().wifi().active());
}

TEST(StockAppsTest, BrowserBoostsAndRestoresBrightness) {
  Testbed bed;
  bed.install<DemoApp>(browser_spec());
  bed.start();
  const int before = bed.server().screen().brightness();
  bed.server().user_launch("com.example.browser");
  EXPECT_EQ(bed.server().screen().brightness(), 180);
  // The legit boost opens a screen window (the paper's point: collateral
  // exists in normal apps too)...
  EXPECT_TRUE(bed.eandroid()->tracker().has_window(
      core::WindowKind::kScreen, bed.uid_of("com.example.browser"),
      kernelsim::Uid{}));
  bed.server().user_press_home();
  // ...and the polite restore closes it and puts the panel back.
  EXPECT_EQ(bed.server().screen().brightness(), before);
  EXPECT_EQ(bed.eandroid()->tracker().open_count(), 0u);
}

TEST(StockAppsTest, BrowserChargedForItsOwnBoost) {
  Testbed bed;
  bed.install<DemoApp>(browser_spec());
  bed.start();
  bed.server().user_launch("com.example.browser");
  for (int i = 0; i < 2; ++i) {
    bed.sim().run_for(sim::seconds(15));
    bed.server().user_tap(1, 1);
  }
  bed.run_for(sim::Duration(0));
  const double screen_collateral = bed.eandroid()->engine().collateral_from(
      bed.uid_of("com.example.browser"), core::Entity::screen());
  EXPECT_GT(screen_collateral, 0.0);
  // Roughly the delta share: (180-102)*2.4 / (300+180*2.4) of screen mJ.
  const double screen_total = 30.0 * (300.0 + 180 * 2.4);
  EXPECT_LT(screen_collateral, screen_total);
}

TEST(StockAppsTest, MapsUsesGps) {
  Testbed bed;
  bed.install<DemoApp>(maps_spec());
  bed.start();
  bed.server().user_launch("com.example.maps");
  EXPECT_TRUE(bed.server().gps().active());
  bed.server().user_press_home();
  EXPECT_FALSE(bed.server().gps().active());
  // GPS tail power persists briefly after.
  EXPECT_GT(bed.server().gps().breakdown().total_mw, 0.0);
}

TEST(StockAppsTest, GameBurnsCpu) {
  Testbed bed;
  bed.install<DemoApp>(game_spec());
  bed.start();
  bed.server().user_launch("com.example.game3d");
  EXPECT_NEAR(bed.server().cpu().instantaneous_utilization(), 0.70, 1e-9);
  bed.run_for(sim::seconds(10));
  // ~700 mW for 10 s.
  EXPECT_NEAR(bed.battery_stats().app_energy_mj(
                  bed.uid_of("com.example.game3d")),
              7000.0, 100.0);
}

TEST(StockAppsTest, FullCastCoexists) {
  Testbed bed;
  bed.install<DemoApp>(message_spec());
  bed.install<DemoApp>(camera_spec());
  bed.install<DemoApp>(contacts_spec());
  bed.install<DemoApp>(music_spec());
  bed.install<DemoApp>(browser_spec());
  bed.install<DemoApp>(maps_spec());
  bed.install<DemoApp>(game_spec());
  bed.install<DemoApp>(victim_spec());
  bed.start();
  for (const char* package :
       {"com.example.message", "com.example.browser", "com.example.maps",
        "com.example.game3d", "com.example.music"}) {
    EXPECT_TRUE(bed.server().user_launch(package)) << package;
    bed.sim().run_for(sim::seconds(5));
  }
  bed.run_for(sim::seconds(1));
  EXPECT_NEAR(bed.battery_stats().total_mj(),
              bed.server().battery().consumed_total_mj(), 1e-3);
}

}  // namespace
}  // namespace eandroid::apps
