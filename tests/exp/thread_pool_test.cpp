#include "exp/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <numeric>
#include <stdexcept>
#include <string>
#include <vector>

#include "exp/parallel_runner.h"

namespace eandroid::exp {
namespace {

TEST(ThreadPoolTest, RunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  std::vector<std::future<void>> done;
  done.reserve(100);
  for (int i = 0; i < 100; ++i) {
    done.push_back(pool.submit([&count] { ++count; }));
  }
  for (auto& future : done) future.get();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, ZeroMeansHardwareConcurrencyNeverZeroWorkers) {
  ThreadPool pool(0);
  EXPECT_GE(pool.size(), 1u);
  EXPECT_EQ(pool.submit([] { return 7; }).get(), 7);
}

TEST(ThreadPoolTest, FutureCarriesResult) {
  ThreadPool pool(2);
  auto future = pool.submit([] { return std::string("payload"); });
  EXPECT_EQ(future.get(), "payload");
}

TEST(ThreadPoolTest, FutureCarriesException) {
  ThreadPool pool(2);
  auto future = pool.submit(
      []() -> int { throw std::runtime_error("job blew up"); });
  EXPECT_THROW(future.get(), std::runtime_error);
}

TEST(ThreadPoolTest, DestructionJoinsWithoutDeadlock) {
  std::atomic<int> ran{0};
  {
    ThreadPool pool(3);
    std::vector<std::future<void>> done;
    for (int i = 0; i < 12; ++i) {
      done.push_back(pool.submit([&ran] { ++ran; }));
    }
    for (auto& future : done) future.get();
  }  // ~ThreadPool joins here
  EXPECT_EQ(ran.load(), 12);
}

TEST(ParallelRunnerTest, CollectsResultsInSubmissionOrder) {
  // Jobs finish in scrambled order (later jobs are cheaper), but the
  // result vector must follow submission order.
  const std::vector<int> results = run_indexed<int>(
      32,
      [](std::size_t i) {
        // Busy-work inversely proportional to the index.
        volatile std::uint64_t sink = 0;
        for (std::size_t k = 0; k < (32 - i) * 10000; ++k) {
          sink = sink + k;
        }
        return static_cast<int>(i * i);
      },
      {.threads = 4});
  ASSERT_EQ(results.size(), 32u);
  for (std::size_t i = 0; i < results.size(); ++i) {
    EXPECT_EQ(results[i], static_cast<int>(i * i)) << "slot " << i;
  }
}

TEST(ParallelRunnerTest, RethrowsJobExceptionAfterAllJobsFinish) {
  std::atomic<int> finished{0};
  ParallelRunner<int> runner({.threads = 2});
  std::vector<ParallelRunner<int>::Job> jobs;
  for (int i = 0; i < 8; ++i) {
    jobs.push_back([i, &finished]() -> int {
      if (i == 3) throw std::runtime_error("seed 3 diverged");
      ++finished;
      return i;
    });
  }
  EXPECT_THROW(runner.run(std::move(jobs)), std::runtime_error);
  // No job was abandoned because of the failing one.
  EXPECT_EQ(finished.load(), 7);
}

TEST(ParallelRunnerTest, SerialPathMatchesParallelPath) {
  const auto square = [](std::size_t i) { return static_cast<int>(i * 3); };
  std::vector<ParallelRunner<int>::Job> jobs;
  for (std::size_t i = 0; i < 16; ++i) jobs.push_back([=] { return square(i); });
  const auto serial = ParallelRunner<int>::run_serial(std::move(jobs));
  const auto parallel =
      run_indexed<int>(16, square, {.threads = 4});
  EXPECT_EQ(serial, parallel);
}

}  // namespace
}  // namespace eandroid::exp
