// The ParallelRunner contract: fanning independent Testbed simulations
// across worker threads changes wall time and nothing else. Eight seeds
// of RandomWorkload run once serially and once through the pool; every
// per-seed observable must be bitwise identical. This test is the one the
// TSan config (`-DEANDROID_SANITIZE=thread`, or the `check_tsan` target)
// exercises to prove the logger and pool are race-free.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "apps/testbed.h"
#include "apps/workload.h"
#include "exp/parallel_runner.h"
#include "sim/log.h"

namespace eandroid::exp {
namespace {

struct SeedResult {
  std::uint64_t steps = 0;
  double sim_seconds = 0.0;
  std::uint64_t windows_opened = 0;
  std::uint64_t windows_closed = 0;
  double drained_mj = 0.0;
  double ea_total_mj = 0.0;
};

SeedResult run_seed(std::uint64_t seed) {
  apps::Testbed bed({.seed = seed});
  apps::RandomWorkload workload(bed, {.seed = seed});
  bed.start();
  workload.run(200);
  bed.run_for(sim::seconds(1));
  return SeedResult{workload.steps_taken(),
                    bed.sim().now().seconds(),
                    bed.eandroid()->tracker().opened_total(),
                    bed.eandroid()->tracker().closed_total(),
                    bed.server().battery().consumed_total_mj(),
                    bed.eandroid()->engine().true_total_mj()};
}

void expect_bitwise_equal(const SeedResult& serial, const SeedResult& pooled,
                          std::uint64_t seed) {
  EXPECT_EQ(serial.steps, pooled.steps) << "seed " << seed;
  EXPECT_EQ(serial.windows_opened, pooled.windows_opened) << "seed " << seed;
  EXPECT_EQ(serial.windows_closed, pooled.windows_closed) << "seed " << seed;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.sim_seconds),
            std::bit_cast<std::uint64_t>(pooled.sim_seconds))
      << "seed " << seed;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.drained_mj),
            std::bit_cast<std::uint64_t>(pooled.drained_mj))
      << "seed " << seed;
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.ea_total_mj),
            std::bit_cast<std::uint64_t>(pooled.ea_total_mj))
      << "seed " << seed;
}

TEST(ParallelDeterminismTest, EightSeedsBitwiseIdenticalToSerial) {
  constexpr std::uint64_t kSeeds = 8;
  const auto job = [](std::size_t i) { return run_seed(i + 1); };

  std::vector<ParallelRunner<SeedResult>::Job> serial_jobs;
  for (std::size_t i = 0; i < kSeeds; ++i) {
    serial_jobs.push_back([i, &job] { return job(i); });
  }
  const std::vector<SeedResult> serial =
      ParallelRunner<SeedResult>::run_serial(std::move(serial_jobs));

  const std::vector<SeedResult> pooled =
      run_indexed<SeedResult>(kSeeds, job, {.threads = 4});

  ASSERT_EQ(pooled.size(), serial.size());
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    expect_bitwise_equal(serial[seed - 1], pooled[seed - 1], seed);
    // The soak's conservation invariant holds on both paths.
    EXPECT_NEAR(serial[seed - 1].drained_mj, serial[seed - 1].ea_total_mj,
                1e-3)
        << "seed " << seed;
  }
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAgree) {
  constexpr std::uint64_t kSeeds = 4;
  const auto job = [](std::size_t i) { return run_seed(i + 1); };
  const auto first = run_indexed<SeedResult>(kSeeds, job, {.threads = 4});
  const auto second = run_indexed<SeedResult>(kSeeds, job, {.threads = 2});
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    expect_bitwise_equal(first[seed - 1], second[seed - 1], seed);
  }
}

TEST(ParallelDeterminismTest, LoggerIsThreadLocal) {
  // A job cranking its logger must not leak a level into other workers or
  // into the main thread (the pre-PR singleton failed exactly this).
  sim::Logger::instance().set_level(sim::LogLevel::kOff);
  const auto levels = run_indexed<int>(
      8,
      [](std::size_t i) {
        auto& logger = sim::Logger::instance();
        if (i % 2 == 0) {
          logger.set_sink([](sim::LogLevel, sim::TimePoint,
                             const std::string&, const std::string&) {});
          logger.set_level(sim::LogLevel::kTrace);
        }
        return static_cast<int>(logger.level());
      },
      {.threads = 4});
  EXPECT_EQ(sim::Logger::instance().level(), sim::LogLevel::kOff);
  EXPECT_EQ(levels.size(), 8u);
}

}  // namespace
}  // namespace eandroid::exp
