// WorkStealingExecutor contracts, at TSan-friendly sizes:
//   * every submitted task runs exactly once — across bulk submission,
//     worker self-submission (requeue chains), and randomized stealing;
//   * wait_idle() covers tasks submitted BY tasks, transitively, and
//     rethrows the first task exception after everything else finishes;
//   * the executor is reusable across dispatch waves (park/unpark);
//   * the raw TaskDeque loses nothing under a concurrent owner + thieves;
//   * ParallelRunner's chunked-submission mode is bitwise identical to
//     the serial reference (the shared fan-out-granularity satellite).
//
// This file rides in exp_tests under the `tsan` label: a ThreadSanitizer
// build executes the same interleavings with race detection on, which is
// the real point — the deque's conservative orderings must be clean.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exp/parallel_runner.h"
#include "exp/work_stealing.h"

namespace eandroid::exp {
namespace {

TEST(WorkStealingExecutorTest, EveryTaskRunsExactlyOnce) {
  constexpr int kTasks = 2000;
  WorkStealingExecutor executor(4);
  std::vector<std::atomic<int>> runs(kTasks);
  for (auto& r : runs) r.store(0);
  for (int i = 0; i < kTasks; ++i) {
    executor.submit([&runs, i] { runs[i].fetch_add(1); });
  }
  executor.wait_idle();
  for (int i = 0; i < kTasks; ++i) {
    ASSERT_EQ(runs[i].load(), 1) << "task " << i;
  }
  EXPECT_EQ(executor.stats().executed, static_cast<std::uint64_t>(kTasks));
}

TEST(WorkStealingExecutorTest, BulkSubmitRunsTheWholeBatch) {
  constexpr int kTasks = 1000;
  WorkStealingExecutor executor(3);
  std::atomic<int> sum{0};
  std::vector<WorkStealingExecutor::Task> batch;
  batch.reserve(kTasks);
  for (int i = 0; i < kTasks; ++i) {
    batch.push_back([&sum, i] { sum.fetch_add(i); });
  }
  executor.submit_bulk(std::move(batch));
  executor.wait_idle();
  EXPECT_EQ(sum.load(), kTasks * (kTasks - 1) / 2);
}

TEST(WorkStealingExecutorTest, RequeueChainsCompleteBeforeWaitIdle) {
  // The fleet's shape: a task re-submits itself from the worker thread
  // (own-deque push) until its chain is done. wait_idle must count the
  // transitively submitted work.
  constexpr int kChains = 64;
  constexpr int kLinks = 50;
  WorkStealingExecutor executor(4);
  std::vector<std::atomic<int>> progress(kChains);
  for (auto& p : progress) p.store(0);
  std::function<void(int)> link = [&](int chain) {
    if (progress[chain].fetch_add(1) + 1 < kLinks) {
      executor.submit([&link, chain] { link(chain); });
    }
  };
  for (int c = 0; c < kChains; ++c) {
    executor.submit([&link, c] { link(c); });
  }
  executor.wait_idle();
  for (int c = 0; c < kChains; ++c) {
    ASSERT_EQ(progress[c].load(), kLinks) << "chain " << c;
  }
}

TEST(WorkStealingExecutorTest, FirstExceptionIsRethrownAfterAllTasksRun) {
  WorkStealingExecutor executor(2);
  std::atomic<int> ran{0};
  for (int i = 0; i < 100; ++i) {
    executor.submit([&ran, i] {
      if (i == 37) throw std::runtime_error("task 37 failed");
      ran.fetch_add(1);
    });
  }
  EXPECT_THROW(executor.wait_idle(), std::runtime_error);
  // Every non-throwing task still ran — a failure never abandons the
  // rest of the dispatch wave.
  EXPECT_EQ(ran.load(), 99);
  // The error was consumed; the executor stays usable.
  executor.submit([&ran] { ran.fetch_add(1); });
  executor.wait_idle();
  EXPECT_EQ(ran.load(), 100);
}

TEST(WorkStealingExecutorTest, ReusableAcrossDispatchWaves) {
  // Waves separated by idle gaps exercise park/unpark: workers sleep
  // between waves and every wave still completes fully.
  WorkStealingExecutor executor(3);
  std::atomic<int> total{0};
  for (int wave = 0; wave < 20; ++wave) {
    for (int i = 0; i < 50; ++i) {
      executor.submit([&total] { total.fetch_add(1); });
    }
    executor.wait_idle();
    ASSERT_EQ(total.load(), (wave + 1) * 50);
  }
}

TEST(TaskDequeTest, OwnerAndThievesPartitionTheTasks) {
  // One owner pushes/pops, three thieves steal concurrently; every
  // pushed value is consumed exactly once across the four threads.
  constexpr int kValues = 20000;
  TaskDeque deque(8);  // small initial ring: forces grow() under load
  std::vector<int> values(kValues);
  std::iota(values.begin(), values.end(), 0);
  std::vector<std::atomic<int>> seen(kValues);
  for (auto& s : seen) s.store(0);
  std::atomic<bool> done{false};

  auto thief = [&] {
    while (!done.load()) {
      if (void* task = deque.steal()) {
        seen[*static_cast<int*>(task)].fetch_add(1);
      }
    }
    // Drain whatever is left after the owner stops.
    while (void* task = deque.steal()) {
      seen[*static_cast<int*>(task)].fetch_add(1);
    }
  };
  std::vector<std::thread> thieves;
  for (int t = 0; t < 3; ++t) thieves.emplace_back(thief);

  for (int i = 0; i < kValues; ++i) {
    deque.push(&values[i]);
    if (i % 3 == 0) {
      if (void* task = deque.pop()) {
        seen[*static_cast<int*>(task)].fetch_add(1);
      }
    }
  }
  while (void* task = deque.pop()) {
    seen[*static_cast<int*>(task)].fetch_add(1);
  }
  done.store(true);
  for (auto& t : thieves) t.join();

  for (int i = 0; i < kValues; ++i) {
    ASSERT_EQ(seen[i].load(), 1) << "value " << i;
  }
}

TEST(ParallelRunnerChunkTest, ChunkedRunMatchesSerialBitwise) {
  constexpr std::size_t kJobs = 512;
  std::vector<ParallelRunner<std::string>::Job> jobs;
  for (std::size_t i = 0; i < kJobs; ++i) {
    jobs.push_back([i] { return "job-" + std::to_string(i * i); });
  }
  const std::vector<std::string> serial =
      ParallelRunner<std::string>::run_serial(jobs);
  RunnerOptions options;
  options.threads = 4;
  options.chunk = 16;
  EXPECT_EQ(ParallelRunner<std::string>(options).run(jobs), serial);
  options.chunk = 1000;  // one block holds everything
  EXPECT_EQ(ParallelRunner<std::string>(options).run(jobs), serial);
}

TEST(ParallelRunnerChunkTest, ChunkedRunRethrowsLowestIndexError) {
  std::vector<ParallelRunner<int>::Job> jobs;
  for (int i = 0; i < 64; ++i) {
    jobs.push_back([i]() -> int {
      if (i == 11 || i == 50) throw std::runtime_error(std::to_string(i));
      return i;
    });
  }
  RunnerOptions options;
  options.threads = 3;
  options.chunk = 8;
  try {
    ParallelRunner<int>(options).run(std::move(jobs));
    FAIL() << "expected a job exception";
  } catch (const std::runtime_error& e) {
    EXPECT_STREQ(e.what(), "11");
  }
}

}  // namespace
}  // namespace eandroid::exp
