// The fleet acceptance run: a 1,000-device population runs a
// 10-simulated-minute push-campaign workload to completion in a single
// process, and every device's full-precision energy digest is bitwise
// identical across shard counts {1, 4, 8} and across two repeated runs.
//
// This is the scale contract of the fleet layer — kept out of the tsan
// label (a sanitized build would multiply the runtime ~20x; the
// smaller shard-independence tests in fleet_test.cpp cover the race
// surface under TSan with the same code paths).
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/demo_app.h"
#include "fleet/aggregate.h"
#include "fleet/fleet.h"

namespace eandroid::fleet {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;

constexpr int kDevices = 1000;
constexpr sim::Duration kRunTime = sim::minutes(10);

std::shared_ptr<const InstallPlan> campaign_plan() {
  auto plan = std::make_shared<InstallPlan>();
  DemoAppSpec sender;
  sender.package = "com.fleet.weather";
  plan->add_app<DemoApp>(sender);

  DemoAppSpec victim;
  victim.package = "com.fleet.syncclient";
  victim.push_endpoint = true;
  plan->add_app<DemoApp>(victim);
  return plan;
}

std::vector<std::string> run_campaign(int shards) {
  FleetOptions options;
  options.device_count = kDevices;
  options.shards = shards;
  options.epoch = sim::seconds(10);
  options.install_plan = campaign_plan();
  Fleet fleet(options);

  // A slow steady drip across the whole run: one push every 15 s per
  // device, phase-staggered so the population never ticks in unison.
  PushCampaign campaign;
  campaign.sender_package = "com.fleet.weather";
  campaign.target_package = "com.fleet.syncclient";
  campaign.start = sim::TimePoint{} + sim::seconds(5);
  campaign.period = sim::seconds(15);
  campaign.pushes_per_device = 39;  // last lands at 575 s + stagger
  campaign.device_stagger = sim::millis(7);
  fleet.broker().add_campaign(campaign);

  fleet.start();
  fleet.run_for(kRunTime);
  fleet.finish();
  return fleet.energy_digests();
}

TEST(FleetCampaignTest, ThousandDevicesShardAndRepeatInvariant) {
  const std::vector<std::string> shard1 = run_campaign(1);
  ASSERT_EQ(shard1.size(), static_cast<std::size_t>(kDevices));
  // No empty digests, and stagger makes devices distinct populations.
  EXPECT_FALSE(shard1.front().empty());
  EXPECT_NE(shard1.front(), shard1.back());

  const std::vector<std::string> shard4 = run_campaign(4);
  const std::vector<std::string> shard8 = run_campaign(8);
  const std::vector<std::string> repeat = run_campaign(4);

  // Per-device, bitwise. EXPECT_EQ on the vectors would drown the log on
  // failure; compare element-wise and report the first few divergences.
  int mismatches = 0;
  for (int i = 0; i < kDevices && mismatches < 3; ++i) {
    const auto idx = static_cast<std::size_t>(i);
    EXPECT_EQ(shard1[idx], shard4[idx]) << "device " << i << " (1 vs 4)";
    EXPECT_EQ(shard1[idx], shard8[idx]) << "device " << i << " (1 vs 8)";
    EXPECT_EQ(shard4[idx], repeat[idx]) << "device " << i << " (repeat)";
    if (shard1[idx] != shard4[idx] || shard1[idx] != shard8[idx] ||
        shard4[idx] != repeat[idx]) {
      ++mismatches;
    }
  }
  EXPECT_EQ(shard1, shard4);
  EXPECT_EQ(shard1, shard8);
  EXPECT_EQ(shard4, repeat);
}

}  // namespace
}  // namespace eandroid::fleet
