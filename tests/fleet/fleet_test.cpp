// The fleet layer's contracts:
//   * DeviceContext is the old Testbed, bit for bit — extracting it
//     changed nothing observable on the one-phone path;
//   * immutable configuration is genuinely shared: one PowerParams /
//     Manifest object per fleet, aliased by every device;
//   * per-device results are a pure function of the spec — bitwise
//     identical across shard counts, repeated runs, and with faults
//     injected on a subset of devices;
//   * the PushBroker's campaigns deliver deterministically and their
//     energy lands on the sender's account (collateral attribution).
//
// This suite runs under the tsan label: a ThreadSanitizer build executes
// it with multi-shard fleets to prove the epoch barriers are the only
// synchronization the devices need.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/demo_app.h"
#include "apps/malware.h"
#include "apps/testbed.h"
#include "fleet/aggregate.h"
#include "fleet/fault_actions.h"
#include "fleet/fleet.h"
#include "sim/fault.h"

namespace eandroid::fleet {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;

/// The fleet cast: a push-flooder "weather" app and a sync-client victim
/// on every device, plus a small steady load app.
std::shared_ptr<const InstallPlan> campaign_plan() {
  auto plan = std::make_shared<InstallPlan>();
  DemoAppSpec sender;
  sender.package = "com.fleet.weather";
  sender.foreground_cpu = 0.02;
  plan->add_app<DemoApp>(sender);

  DemoAppSpec victim;
  victim.package = "com.fleet.syncclient";
  victim.push_endpoint = true;
  plan->add_app<DemoApp>(victim);

  DemoAppSpec load;
  load.package = "com.fleet.load";
  load.background_cpu = 0.03;
  plan->add_app<DemoApp>(load);
  return plan;
}

PushCampaign flood_campaign(int pushes_per_device) {
  PushCampaign campaign;
  campaign.sender_package = "com.fleet.weather";
  campaign.target_package = "com.fleet.syncclient";
  campaign.start = sim::TimePoint{} + sim::seconds(2);
  campaign.period = sim::millis(750);
  campaign.pushes_per_device = pushes_per_device;
  campaign.device_stagger = sim::millis(13);
  return campaign;
}

FleetOptions small_fleet_options(int devices, int shards) {
  FleetOptions options;
  options.device_count = devices;
  options.shards = shards;
  options.install_plan = campaign_plan();
  options.epoch = sim::seconds(2);
  return options;
}

std::vector<std::string> run_small_campaign(int devices, int shards,
                                            sim::Duration run_time) {
  Fleet fleet(small_fleet_options(devices, shards));
  fleet.broker().add_campaign(flood_campaign(/*pushes_per_device=*/8));
  fleet.start();
  fleet.run_for(run_time);
  fleet.finish();
  return fleet.energy_digests();
}

TEST(DeviceContextTest, IsTheTestbedBitForBit) {
  // The same scripted session on a Testbed (wrapper) and a DeviceContext
  // built from the translated spec must digest identically.
  const auto drive = [](DeviceContext& bed) {
    DemoAppSpec victim = apps::victim_spec();
    bed.install<DemoApp>(victim);
    bed.start();
    bed.server().user_launch(victim.package);
    bed.sim().run_for(sim::seconds(10));
    bed.server().simulate_incoming_call(sim::seconds(5));
    bed.sim().run_for(sim::seconds(10));
    bed.server().user_press_home();
    bed.run_for(sim::seconds(30));
    return bed.energy_digest();
  };
  apps::TestbedOptions options;
  options.seed = 7;
  apps::Testbed testbed(options);
  DeviceContext device(apps::Testbed::spec_from(options));
  EXPECT_EQ(drive(testbed), drive(device));
}

TEST(DeviceContextTest, BaselinePathMatchesHotPath) {
  const auto run = [](bool hot_path) {
    DeviceSpec spec;
    spec.seed = 3;
    spec.hot_path = hot_path;
    DeviceContext device(spec);
    device.install<DemoApp>(apps::message_spec());
    device.start();
    device.server().user_launch("com.example.message");
    device.run_for(sim::seconds(45));
    return device.energy_digest();
  };
  EXPECT_EQ(run(true), run(false));
}

TEST(FleetTest, SharedConfigIsOneObjectPerFleet) {
  Fleet fleet(small_fleet_options(/*devices=*/4, /*shards=*/2));
  fleet.start();
  const hw::PowerParams* params =
      fleet.device(0).server().params_ptr().get();
  const framework::PackageRecord* first =
      fleet.device(0).server().packages().find("com.fleet.syncclient");
  ASSERT_NE(first, nullptr);
  for (std::size_t i = 1; i < fleet.size(); ++i) {
    EXPECT_EQ(fleet.device(i).server().params_ptr().get(), params)
        << "device " << i << " copied PowerParams";
    const framework::PackageRecord* pkg =
        fleet.device(i).server().packages().find("com.fleet.syncclient");
    ASSERT_NE(pkg, nullptr);
    EXPECT_EQ(pkg->manifest.get(), first->manifest.get())
        << "device " << i << " copied the manifest";
  }
  // The stock default engine config is shared too.
  EXPECT_EQ(fleet.options().engine_config.get(),
            shared_default_engine_config().get());
}

TEST(FleetTest, DigestsIndependentOfShardCount) {
  const sim::Duration run_time = sim::seconds(12);
  const std::vector<std::string> one =
      run_small_campaign(/*devices=*/64, /*shards=*/1, run_time);
  const std::vector<std::string> four =
      run_small_campaign(/*devices=*/64, /*shards=*/4, run_time);
  const std::vector<std::string> eight =
      run_small_campaign(/*devices=*/64, /*shards=*/8, run_time);
  ASSERT_EQ(one.size(), 64u);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(FleetTest, RepeatedRunsAreBitIdentical) {
  const sim::Duration run_time = sim::seconds(12);
  EXPECT_EQ(run_small_campaign(16, 4, run_time),
            run_small_campaign(16, 4, run_time));
}

TEST(FleetTest, DigestsIndependentOfEpochLength) {
  const auto run = [](sim::Duration epoch) {
    FleetOptions options = small_fleet_options(/*devices=*/8, /*shards=*/2);
    options.epoch = epoch;
    Fleet fleet(options);
    // Off the 250 ms sampler grid: a send colliding to the microsecond
    // with a device-internal event fires in injection order, which is an
    // epoch-dependent tie (see push_broker.h). Device 0 has stagger 0,
    // so shift the whole campaign 1 ms off the grid.
    PushCampaign campaign = flood_campaign(8);
    campaign.start = campaign.start + sim::millis(1);
    fleet.broker().add_campaign(campaign);
    fleet.start();
    fleet.run_for(sim::seconds(12));
    fleet.finish();
    return fleet.energy_digests();
  };
  EXPECT_EQ(run(sim::millis(500)), run(sim::seconds(3)));
}

TEST(FleetTest, ChaosOnASubsetIsShardIndependent) {
  // Faults on every third device, via the same seeded plans the chaos
  // harness uses; per-device digests must still be sharding-invariant.
  const auto run = [](int shards) {
    Fleet fleet(small_fleet_options(/*devices=*/24, shards));
    fleet.broker().add_campaign(flood_campaign(6));
    fleet.start();
    std::vector<std::unique_ptr<sim::FaultInjector>> injectors;
    for (std::size_t i = 0; i < fleet.size(); i += 3) {
      DeviceContext& device = fleet.device(i);
      const sim::FaultPlan plan = sim::FaultPlan::generate(
          device.spec().seed, sim::seconds(10), /*count=*/5);
      injectors.push_back(std::make_unique<sim::FaultInjector>(
          device.sim(), default_fault_actions(device.server())));
      injectors.back()->arm(plan);
    }
    fleet.run_for(sim::seconds(12));
    fleet.finish();
    return fleet.energy_digests();
  };
  const std::vector<std::string> one = run(1);
  EXPECT_EQ(one, run(4));
  // Sanity: the faulted devices diverged from the clean ones.
  EXPECT_NE(one[0], one[1]);
}

TEST(PushBrokerTest, DeliversTheCampaignCountAndChargesTheSender) {
  Fleet fleet(small_fleet_options(/*devices=*/3, /*shards=*/2));
  fleet.broker().add_campaign(flood_campaign(/*pushes_per_device=*/10));
  fleet.start();
  fleet.run_for(sim::seconds(30));
  fleet.finish();
  EXPECT_EQ(fleet.broker().scheduled_total(), 30u);
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    DeviceContext& device = fleet.device(i);
    EXPECT_EQ(device.server().push().pushes_delivered(), 10u)
        << "device " << i;
    // The receiver's wake-up cost is collateral on the sender (the
    // push-attack extension the one-phone scenarios pinned).
    const kernelsim::Uid sender = device.uid_of("com.fleet.weather");
    EXPECT_GT(device.eandroid()->engine().collateral_mj(sender), 0.0)
        << "device " << i;
  }
}

TEST(PushBrokerTest, StrideTargetsOnlyTheSelectedSlice) {
  Fleet fleet(small_fleet_options(/*devices=*/4, /*shards=*/2));
  PushCampaign campaign = flood_campaign(4);
  campaign.device_stride = 2;
  campaign.device_phase = 1;
  fleet.broker().add_campaign(campaign);
  fleet.start();
  fleet.run_for(sim::seconds(10));
  fleet.finish();
  for (std::size_t i = 0; i < fleet.size(); ++i) {
    const std::uint64_t expected = (i % 2 == 1) ? 4u : 0u;
    EXPECT_EQ(fleet.device(i).server().push().pushes_delivered(), expected)
        << "device " << i;
  }
}

TEST(PushBrokerTest, ClosedFormWindowingMatchesBruteForce) {
  // inject() enumerates send instants in closed form (a k-range, not an
  // O(pushes_per_device) scan); may_send_in exposes the same range test.
  // Check it against the brute-force definition across awkward
  // geometries: windows before the first send, straddling the last one,
  // a degenerate zero period, stagger pushing sends across windows.
  PushBroker broker;
  PushCampaign drip = flood_campaign(9);
  drip.period = sim::millis(700);
  drip.device_stagger = sim::millis(333);
  broker.add_campaign(drip);
  PushCampaign burst = flood_campaign(4);
  burst.period = sim::Duration(0);  // all four sends at one instant
  burst.start = sim::TimePoint{} + sim::millis(4500);
  broker.add_campaign(burst);
  PushCampaign sliced = flood_campaign(6);
  sliced.device_stride = 2;
  sliced.device_phase = 1;
  broker.add_campaign(sliced);

  for (int device = 0; device < 4; ++device) {
    for (const std::int64_t begin_ms : {0, 1000, 2000, 4500, 7000, 60000}) {
      for (const std::int64_t len_ms : {1, 500, 2000, 10000}) {
        const sim::TimePoint begin =
            sim::TimePoint{} + sim::millis(begin_ms);
        const sim::TimePoint end = begin + sim::millis(len_ms);
        int expected = 0;
        for (const PushCampaign& c : broker.campaigns()) {
          if (c.device_stride > 1 &&
              device % c.device_stride != c.device_phase) {
            continue;
          }
          const sim::TimePoint first = c.start + c.device_stagger * device;
          for (int k = 0; k < c.pushes_per_device; ++k) {
            const sim::TimePoint at = first + c.period * k;
            if (at >= begin && at < end) ++expected;
          }
        }
        EXPECT_EQ(broker.may_send_in(device, begin, end), expected > 0)
            << "device " << device << " window [" << begin_ms << "ms, +"
            << len_ms << "ms)";
      }
    }
    // An empty window never sends.
    const sim::TimePoint t = sim::TimePoint{} + sim::seconds(3);
    EXPECT_FALSE(broker.may_send_in(device, t, t));
  }
}

TEST(AggregateTest, SumsMatchTheDevicesAndAreDeterministic) {
  const auto build = [] {
    auto fleet = std::make_unique<Fleet>(
        small_fleet_options(/*devices=*/6, /*shards=*/3));
    fleet->broker().add_campaign(flood_campaign(8));
    fleet->start();
    fleet->run_for(sim::seconds(15));
    fleet->finish();
    return fleet;
  };
  auto fleet = build();
  const FleetReport report = aggregate_fleet(*fleet);
  EXPECT_EQ(report.devices, 6);
  EXPECT_EQ(report.pushes_delivered, 6u * 8u);

  double true_total = 0.0;
  double consumed = 0.0;
  for (std::size_t i = 0; i < fleet->size(); ++i) {
    true_total += fleet->device(i).engine_report().true_total_mj;
    consumed += fleet->device(i).server().battery().consumed_total_mj();
  }
  EXPECT_DOUBLE_EQ(report.true_total_mj, true_total);
  EXPECT_DOUBLE_EQ(report.battery_consumed_mj, consumed);

  // Every package row is present on all six devices.
  bool saw_sender = false;
  for (const FleetPackageRow& row : report.packages) {
    EXPECT_EQ(row.devices, 6) << row.package;
    if (row.package == "com.fleet.weather") {
      saw_sender = true;
      EXPECT_GT(row.collateral_mj, 0.0);
    }
  }
  EXPECT_TRUE(saw_sender);

  auto again = build();
  EXPECT_EQ(report.digest(), aggregate_fleet(*again).digest());
}

TEST(FleetTest, StartTwiceIsACheckedError) {
  Fleet fleet(small_fleet_options(1, 1));
  fleet.start();
  EXPECT_THROW(fleet.start(), sim::CheckFailure);
}

TEST(InstallPlanTest, RejectsNullEntries) {
  InstallPlan plan;
  EXPECT_THROW(plan.add(std::shared_ptr<const framework::Manifest>{},
                        [] { return std::make_unique<DemoApp>(DemoAppSpec{}); }),
               sim::CheckFailure);
  EXPECT_THROW(plan.add(framework::Manifest{}, nullptr), sim::CheckFailure);
}

}  // namespace
}  // namespace eandroid::fleet
