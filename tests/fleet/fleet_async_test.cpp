// The work-stealing scheduler's contract: flipping FleetOptions away
// from lockstep changes throughput and memory, never results.
//
//   * digests are bitwise identical to lockstep across worker counts,
//     advance grains, and multi-call run_for timelines;
//   * with tracing on, the per-device trace BYTES match lockstep too
//     (consolidation only triggers with tracing off);
//   * hibernation (snapshot → evict → replay-restore) is digest-invariant
//     across eviction schedules, and restoring a parked device rebuilds
//     bit-identical state;
//   * devices handed out via device(i) are pinned: external mutations
//     survive (they are never replayed away);
//   * campaign mutation after an async start is a checked error.
//
// Runs under the tsan label with multi-worker fleets: the executor's
// deques, the broker's frozen read path, and the hibernation LRU are the
// entire race surface.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "apps/demo_app.h"
#include "fleet/aggregate.h"
#include "fleet/fleet.h"

namespace eandroid::fleet {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;

std::shared_ptr<const InstallPlan> campaign_plan() {
  auto plan = std::make_shared<InstallPlan>();
  DemoAppSpec sender;
  sender.package = "com.fleet.weather";
  sender.foreground_cpu = 0.02;
  plan->add_app<DemoApp>(sender);

  DemoAppSpec victim;
  victim.package = "com.fleet.syncclient";
  victim.push_endpoint = true;
  plan->add_app<DemoApp>(victim);

  DemoAppSpec load;
  load.package = "com.fleet.load";
  load.background_cpu = 0.03;
  plan->add_app<DemoApp>(load);
  return plan;
}

PushCampaign flood_campaign(int pushes_per_device) {
  PushCampaign campaign;
  campaign.sender_package = "com.fleet.weather";
  campaign.target_package = "com.fleet.syncclient";
  campaign.start = sim::TimePoint{} + sim::seconds(2) + sim::millis(1);
  campaign.period = sim::millis(750);
  campaign.pushes_per_device = pushes_per_device;
  campaign.device_stagger = sim::millis(13);
  return campaign;
}

FleetOptions base_options(int devices) {
  FleetOptions options;
  options.device_count = devices;
  options.install_plan = campaign_plan();
  options.epoch = sim::seconds(2);
  options.shards = 2;
  return options;
}

/// Runs the shared two-leg timeline (two run_for calls, so windows span
/// multiple dispatches) and returns the digests.
std::vector<std::string> run_fleet(FleetOptions options) {
  Fleet fleet(std::move(options));
  fleet.broker().add_campaign(flood_campaign(/*pushes_per_device=*/8));
  fleet.start();
  fleet.run_for(sim::seconds(7));
  fleet.run_for(sim::seconds(5));
  fleet.finish();
  return fleet.energy_digests();
}

TEST(FleetAsyncTest, DigestsMatchLockstepAcrossWorkerCountsAndGrains) {
  const std::vector<std::string> lockstep = run_fleet(base_options(16));
  ASSERT_EQ(lockstep.size(), 16u);
  for (const unsigned workers : {1u, 2u, 4u}) {
    FleetOptions options = base_options(16);
    options.scheduler = Scheduler::kWorkStealing;
    options.workers = workers;
    EXPECT_EQ(run_fleet(options), lockstep) << "workers=" << workers;
  }
  FleetOptions fine_grain = base_options(16);
  fine_grain.scheduler = Scheduler::kWorkStealing;
  fine_grain.workers = 3;
  fine_grain.advance_grain_windows = 1;
  EXPECT_EQ(run_fleet(fine_grain), lockstep);
}

TEST(FleetAsyncTest, TraceBytesMatchLockstep) {
  // Tracing disables window consolidation, so the async scheduler must
  // emit the exact per-window mark sequence the lockstep driver does.
  const auto run = [](Scheduler scheduler) {
    FleetOptions options = base_options(6);
    options.scheduler = scheduler;
    options.workers = 3;
    options.obs.trace = true;
    Fleet fleet(options);
    fleet.broker().add_campaign(flood_campaign(5));
    fleet.start();
    fleet.run_for(sim::seconds(9));
    fleet.finish();
    std::vector<std::string> traces;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      traces.push_back(fleet.device(i).trace_text());
    }
    return traces;
  };
  EXPECT_EQ(run(Scheduler::kLockstep), run(Scheduler::kWorkStealing));
}

TEST(FleetAsyncTest, HibernationIsDigestInvariantAcrossEvictionSchedules) {
  const std::vector<std::string> lockstep = run_fleet(base_options(12));
  for (const int cap : {1, 3, 12}) {
    for (const int grain : {1, 8}) {
      FleetOptions options = base_options(12);
      options.scheduler = Scheduler::kWorkStealing;
      options.workers = 2;
      options.max_resident_devices = cap;
      options.advance_grain_windows = grain;
      EXPECT_EQ(run_fleet(options), lockstep)
          << "cap=" << cap << " grain=" << grain;
    }
  }
}

TEST(FleetAsyncTest, HibernationParksDevicesAndRestoresByReplay) {
  FleetOptions options = base_options(10);
  options.scheduler = Scheduler::kWorkStealing;
  options.workers = 2;
  options.max_resident_devices = 3;
  Fleet fleet(options);
  fleet.broker().add_campaign(flood_campaign(8));
  fleet.start();
  fleet.run_for(sim::seconds(12));
  // Lazy mode: nothing materialized until the finish pass.
  EXPECT_EQ(fleet.resident_devices(), 0u);
  fleet.finish();
  // The working set honours the cap.
  EXPECT_LE(fleet.resident_devices(), 3u);
  const std::vector<std::string> digests = fleet.energy_digests();

  // Snapshots carry the parked record for every device.
  const obs::MetricsSnapshot metrics = fleet.scheduler_metrics();
  ASSERT_NE(metrics.find("fleet.hib.snapshots"), nullptr);
  EXPECT_EQ(metrics.find("fleet.hib.snapshots")->count, 10u);
  EXPECT_GE(metrics.find("fleet.hib.evictions")->count, 7u);
  EXPECT_EQ(fleet.snapshot(0).pushes_delivered, 8u);
  EXPECT_GT(fleet.snapshot(0).sim_end_us, 0);

  // Waking a parked device replays it into bit-identical state: its live
  // digest equals the snapshot taken before eviction.
  DeviceContext& device = fleet.device(0);
  EXPECT_EQ(device.energy_digest(), digests[0]);
  EXPECT_EQ(device.server().push().pushes_delivered(), 8u);
  EXPECT_GE(fleet.scheduler_metrics().find("fleet.hib.restores")->count, 1u);
}

TEST(FleetAsyncTest, TouchedDevicesArePinnedNotReplayedAway) {
  // Mutating a device through device(i) mid-run must stick: the fleet
  // pins it instead of reconstructing it by replay (which would lose the
  // mutation). Both schedulers get the same mid-run poke; digests for
  // every device — including the poked one — must still match.
  const auto run = [](FleetOptions options, bool poke) {
    Fleet fleet(std::move(options));
    fleet.broker().add_campaign(flood_campaign(6));
    fleet.start();
    fleet.run_for(sim::seconds(6));
    if (poke) {
      // An out-of-band push at the 6 s cut — an external mutation the
      // broker's replay schedule knows nothing about.
      auto& server = fleet.device(2).server();
      const auto* weather = server.packages().find("com.fleet.weather");
      EXPECT_NE(weather, nullptr);
      server.ensure_process(weather->uid);
      server.push().send_push(weather->uid, "com.fleet.syncclient");
    }
    fleet.run_for(sim::seconds(6));
    fleet.finish();
    return fleet.energy_digests();
  };
  FleetOptions hib = base_options(8);
  hib.scheduler = Scheduler::kWorkStealing;
  hib.workers = 2;
  hib.max_resident_devices = 2;
  const std::vector<std::string> lockstep = run(base_options(8), true);
  EXPECT_EQ(run(std::move(hib), true), lockstep);
  // Sanity: the poke was observable at all.
  EXPECT_NE(lockstep[2], run(base_options(8), false)[2]);
}

TEST(FleetAsyncTest, AggregateWorksOnAHibernatingFleet) {
  const auto report_digest = [](FleetOptions options) {
    Fleet fleet(std::move(options));
    fleet.broker().add_campaign(flood_campaign(8));
    fleet.start();
    fleet.run_for(sim::seconds(15));
    fleet.finish();
    return aggregate_fleet(fleet).digest();
  };
  FleetOptions hib = base_options(6);
  hib.scheduler = Scheduler::kWorkStealing;
  hib.workers = 2;
  hib.max_resident_devices = 2;
  EXPECT_EQ(report_digest(std::move(hib)), report_digest(base_options(6)));
}

TEST(FleetAsyncTest, CampaignAfterAsyncStartIsACheckedError) {
  FleetOptions options = base_options(2);
  options.scheduler = Scheduler::kWorkStealing;
  Fleet fleet(options);
  fleet.broker().add_campaign(flood_campaign(2));
  fleet.start();
  EXPECT_THROW(fleet.broker().add_campaign(flood_campaign(2)),
               sim::CheckFailure);
  // Lockstep keeps the old latitude: no freeze, no error.
  Fleet lockstep(base_options(2));
  lockstep.broker().add_campaign(flood_campaign(2));
  lockstep.start();
  lockstep.broker().add_campaign(flood_campaign(2));
}

TEST(FleetAsyncTest, ConsolidationSkipsSendlessWindows) {
  // A campaign confined to the first seconds of a long run leaves a tail
  // of sendless windows; with tracing off the scheduler must fold them.
  FleetOptions options = base_options(4);
  options.scheduler = Scheduler::kWorkStealing;
  options.workers = 2;
  Fleet fleet(options);
  PushCampaign campaign = flood_campaign(3);
  fleet.broker().add_campaign(campaign);
  fleet.start();
  fleet.run_for(sim::seconds(60));
  fleet.finish();
  const obs::MetricsSnapshot metrics = fleet.scheduler_metrics();
  ASSERT_NE(metrics.find("fleet.sched.windows_consolidated"), nullptr);
  EXPECT_GT(metrics.find("fleet.sched.windows_consolidated")->count, 0u);
  // Consolidated or not, the digests match the lockstep reference.
  FleetOptions reference = base_options(4);
  Fleet lockstep(reference);
  lockstep.broker().add_campaign(campaign);
  lockstep.start();
  lockstep.run_for(sim::seconds(60));
  lockstep.finish();
  EXPECT_EQ(fleet.energy_digests(), lockstep.energy_digests());
}

}  // namespace
}  // namespace eandroid::fleet
