// The batched fleet core's contract: FleetOptions::core = kBatched swaps
// N per-device event heaps for one shared time wheel per shard group,
// scatters energy cells into SoA slabs, and moves scratch onto per-shard
// arenas — and none of that may move a single observable bit.
//
//   * digests are bitwise identical to the baseline core across shard
//     counts {1, 4, 8} and both schedulers;
//   * with tracing on, per-device trace BYTES match the baseline too
//     (dispatch depths, mark order, everything);
//   * the equivalence holds across 32 fleet seeds, not one lucky one;
//   * group-level window consolidation still folds sendless windows
//     without disturbing results;
//   * hibernation + batched is a checked error (parking a device would
//     tear cells out of a live shared slab).
//
// Runs under the tsan label: batched fleets exercise the group-serial
// wheel/slab/arena discipline on top of the executor's deques.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "apps/demo_app.h"
#include "fleet/fleet.h"
#include "sim/check.h"

namespace eandroid::fleet {
namespace {

using apps::DemoApp;
using apps::DemoAppSpec;

std::shared_ptr<const InstallPlan> campaign_plan() {
  auto plan = std::make_shared<InstallPlan>();
  DemoAppSpec sender;
  sender.package = "com.fleet.weather";
  sender.foreground_cpu = 0.02;
  plan->add_app<DemoApp>(sender);

  DemoAppSpec victim;
  victim.package = "com.fleet.syncclient";
  victim.push_endpoint = true;
  plan->add_app<DemoApp>(victim);

  DemoAppSpec load;
  load.package = "com.fleet.load";
  load.background_cpu = 0.03;
  plan->add_app<DemoApp>(load);
  return plan;
}

PushCampaign flood_campaign(int pushes_per_device) {
  PushCampaign campaign;
  campaign.sender_package = "com.fleet.weather";
  campaign.target_package = "com.fleet.syncclient";
  campaign.start = sim::TimePoint{} + sim::seconds(2) + sim::millis(1);
  campaign.period = sim::millis(750);
  campaign.pushes_per_device = pushes_per_device;
  campaign.device_stagger = sim::millis(13);
  return campaign;
}

FleetOptions base_options(int devices) {
  FleetOptions options;
  options.device_count = devices;
  options.install_plan = campaign_plan();
  options.epoch = sim::seconds(2);
  options.shards = 2;
  return options;
}

/// Runs the shared two-leg timeline (two run_for calls, so windows span
/// multiple dispatches) and returns the digests.
std::vector<std::string> run_fleet(FleetOptions options) {
  Fleet fleet(std::move(options));
  fleet.broker().add_campaign(flood_campaign(/*pushes_per_device=*/8));
  fleet.start();
  fleet.run_for(sim::seconds(7));
  fleet.run_for(sim::seconds(5));
  fleet.finish();
  return fleet.energy_digests();
}

TEST(FleetBatchedTest, DigestsMatchBaselineAcrossShardsAndSchedulers) {
  const std::vector<std::string> baseline = run_fleet(base_options(16));
  ASSERT_EQ(baseline.size(), 16u);
  for (const int shards : {1, 4, 8}) {
    for (const Scheduler scheduler :
         {Scheduler::kLockstep, Scheduler::kWorkStealing}) {
      FleetOptions options = base_options(16);
      options.core = FleetCore::kBatched;
      options.shards = shards;
      options.scheduler = scheduler;
      if (scheduler == Scheduler::kWorkStealing) options.workers = 3;
      EXPECT_EQ(run_fleet(std::move(options)), baseline)
          << "shards=" << shards << " scheduler="
          << (scheduler == Scheduler::kLockstep ? "lockstep"
                                                : "work-stealing");
    }
  }
}

TEST(FleetBatchedTest, DigestsMatchBaselineAcross32Seeds) {
  // One matching pair could be luck; 32 seeded populations agreeing on
  // every device digest is the wheel/slab/arena stack having no
  // observable surface at all.
  for (std::uint64_t seed = 1; seed <= 32; ++seed) {
    FleetOptions baseline = base_options(3);
    baseline.base_seed = seed;
    FleetOptions batched = baseline;
    batched.core = FleetCore::kBatched;
    const auto run = [](FleetOptions options) {
      Fleet fleet(std::move(options));
      fleet.broker().add_campaign(flood_campaign(4));
      fleet.start();
      fleet.run_for(sim::seconds(6));
      fleet.finish();
      return fleet.energy_digests();
    };
    EXPECT_EQ(run(std::move(batched)), run(std::move(baseline)))
        << "seed=" << seed;
  }
}

TEST(FleetBatchedTest, TraceBytesMatchBaselineAcrossShardsAndSchedulers) {
  // Tracing disables consolidation AND records per-dispatch queue depths:
  // the wheel's per-device projection must reproduce the baseline heap's
  // event order and live counts exactly, byte for byte.
  const auto run = [](FleetCore core, Scheduler scheduler, int shards) {
    FleetOptions options = base_options(6);
    options.core = core;
    options.scheduler = scheduler;
    options.shards = shards;
    if (scheduler == Scheduler::kWorkStealing) options.workers = 2;
    options.obs.trace = true;
    Fleet fleet(std::move(options));
    fleet.broker().add_campaign(flood_campaign(5));
    fleet.start();
    fleet.run_for(sim::seconds(9));
    fleet.finish();
    std::vector<std::string> traces;
    for (std::size_t i = 0; i < fleet.size(); ++i) {
      traces.push_back(fleet.device(i).trace_text());
    }
    return traces;
  };
  const std::vector<std::string> baseline =
      run(FleetCore::kBaseline, Scheduler::kLockstep, 2);
  for (const int shards : {1, 4, 8}) {
    for (const Scheduler scheduler :
         {Scheduler::kLockstep, Scheduler::kWorkStealing}) {
      EXPECT_EQ(run(FleetCore::kBatched, scheduler, shards), baseline)
          << "shards=" << shards << " scheduler="
          << (scheduler == Scheduler::kLockstep ? "lockstep"
                                                : "work-stealing");
    }
  }
}

TEST(FleetBatchedTest, GroupConsolidationFoldsSendlessWindows) {
  // A campaign confined to the first seconds of a long run leaves a tail
  // of sendless windows; the batched core folds them at GROUP granularity
  // (one wheel run spanning many windows) and must not move a bit.
  const auto run = [](FleetCore core) {
    FleetOptions options = base_options(4);
    options.core = core;
    options.scheduler = Scheduler::kWorkStealing;
    options.workers = 2;
    Fleet fleet(std::move(options));
    fleet.broker().add_campaign(flood_campaign(3));
    fleet.start();
    fleet.run_for(sim::seconds(60));
    fleet.finish();
    const obs::MetricsSnapshot metrics = fleet.scheduler_metrics();
    EXPECT_GT(metrics.find("fleet.sched.windows_consolidated")->count, 0u);
    return fleet.energy_digests();
  };
  EXPECT_EQ(run(FleetCore::kBatched), run(FleetCore::kBaseline));
}

TEST(FleetBatchedTest, LockstepAndWorkStealingAgreeUnderTheBatchedCore) {
  // Cross-scheduler agreement WITHIN the batched core (not just against
  // the baseline): the wheel's group-serial discipline must hold under
  // the work-stealing executor's task migration.
  FleetOptions lockstep = base_options(12);
  lockstep.core = FleetCore::kBatched;
  lockstep.shards = 4;
  FleetOptions stealing = lockstep;
  stealing.scheduler = Scheduler::kWorkStealing;
  stealing.workers = 4;
  stealing.advance_grain_windows = 1;
  EXPECT_EQ(run_fleet(std::move(stealing)), run_fleet(std::move(lockstep)));
}

TEST(FleetBatchedTest, HibernationWithBatchedCoreIsACheckedError) {
  FleetOptions options = base_options(4);
  options.core = FleetCore::kBatched;
  options.max_resident_devices = 2;
  EXPECT_THROW(Fleet{std::move(options)}, sim::CheckFailure);
}

}  // namespace
}  // namespace eandroid::fleet
