#include "kernel/process_table.h"

#include <gtest/gtest.h>

namespace eandroid::kernelsim {
namespace {

TEST(ProcessTableTest, SpawnAssignsUniquePids) {
  ProcessTable table;
  const Pid a = table.spawn(Uid{10000}, "app.a");
  const Pid b = table.spawn(Uid{10001}, "app.b");
  EXPECT_NE(a, b);
  EXPECT_TRUE(table.alive(a));
  EXPECT_TRUE(table.alive(b));
  EXPECT_EQ(table.live_count(), 2u);
}

TEST(ProcessTableTest, FindReturnsInfo) {
  ProcessTable table;
  const Pid pid = table.spawn(Uid{10000}, "com.example");
  const ProcessInfo* info = table.find(pid);
  ASSERT_NE(info, nullptr);
  EXPECT_EQ(info->uid, Uid{10000});
  EXPECT_EQ(info->name, "com.example");
}

TEST(ProcessTableTest, KillMarksDead) {
  ProcessTable table;
  const Pid pid = table.spawn(Uid{10000}, "a");
  EXPECT_TRUE(table.kill(pid));
  EXPECT_FALSE(table.alive(pid));
  EXPECT_EQ(table.live_count(), 0u);
}

TEST(ProcessTableTest, DoubleKillFails) {
  ProcessTable table;
  const Pid pid = table.spawn(Uid{10000}, "a");
  EXPECT_TRUE(table.kill(pid));
  EXPECT_FALSE(table.kill(pid));
}

TEST(ProcessTableTest, KillUnknownPidFails) {
  ProcessTable table;
  EXPECT_FALSE(table.kill(Pid{12345}));
}

TEST(ProcessTableTest, DeathObserverRunsOnKill) {
  ProcessTable table;
  Pid observed{};
  table.add_death_observer(
      [&](const ProcessInfo& info) { observed = info.pid; });
  const Pid pid = table.spawn(Uid{10000}, "a");
  table.kill(pid);
  EXPECT_EQ(observed, pid);
}

TEST(ProcessTableTest, ObserversRunInRegistrationOrder) {
  ProcessTable table;
  std::vector<int> order;
  table.add_death_observer([&](const ProcessInfo&) { order.push_back(1); });
  table.add_death_observer([&](const ProcessInfo&) { order.push_back(2); });
  table.kill(table.spawn(Uid{10000}, "a"));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(ProcessTableTest, PidsOfFiltersByUid) {
  ProcessTable table;
  const Pid a1 = table.spawn(Uid{10000}, "a");
  table.spawn(Uid{10001}, "b");
  const Pid a2 = table.spawn(Uid{10000}, "a:remote");
  auto pids = table.pids_of(Uid{10000});
  EXPECT_EQ(pids.size(), 2u);
  table.kill(a1);
  pids = table.pids_of(Uid{10000});
  ASSERT_EQ(pids.size(), 1u);
  EXPECT_EQ(pids[0], a2);
}

TEST(ProcessTableTest, KillUidKillsAllProcesses) {
  ProcessTable table;
  table.spawn(Uid{10000}, "a");
  table.spawn(Uid{10000}, "a:remote");
  table.spawn(Uid{10001}, "b");
  EXPECT_EQ(table.kill_uid(Uid{10000}), 2);
  EXPECT_EQ(table.live_count(), 1u);
}

}  // namespace
}  // namespace eandroid::kernelsim
