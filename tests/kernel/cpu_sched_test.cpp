#include "kernel/cpu_sched.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace eandroid::kernelsim {
namespace {

class CpuSchedTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  ProcessTable processes_;
  CpuScheduler cpu_{sim_, processes_};
};

TEST_F(CpuSchedTest, IdleWindowReportsZero) {
  sim_.run_for(sim::seconds(1));
  const CpuWindow window = cpu_.sample_window();
  EXPECT_DOUBLE_EQ(window.total_utilization, 0.0);
  EXPECT_TRUE(window.shares.empty());
}

TEST_F(CpuSchedTest, SteadyLoadReportsItsDuty) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.add_load(pid, 0.3);
  sim_.run_for(sim::seconds(1));
  const CpuWindow window = cpu_.sample_window();
  EXPECT_NEAR(window.total_utilization, 0.3, 1e-9);
  EXPECT_NEAR(window.share_of(Uid{10000}), 0.3, 1e-9);
}

TEST_F(CpuSchedTest, DemandSaturatesAtOneCore) {
  const Pid a = processes_.spawn(Uid{10000}, "a");
  const Pid b = processes_.spawn(Uid{10001}, "b");
  cpu_.add_load(a, 0.8);
  cpu_.add_load(b, 0.8);
  sim_.run_for(sim::seconds(1));
  const CpuWindow window = cpu_.sample_window();
  EXPECT_NEAR(window.total_utilization, 1.0, 1e-9);
  EXPECT_NEAR(window.share_of(Uid{10000}), 0.5, 1e-9);
  EXPECT_NEAR(window.share_of(Uid{10001}), 0.5, 1e-9);
}

TEST_F(CpuSchedTest, DeadProcessLoadStopsCounting) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.add_load(pid, 0.5);
  processes_.kill(pid);
  sim_.run_for(sim::seconds(1));
  EXPECT_DOUBLE_EQ(cpu_.sample_window().total_utilization, 0.0);
}

TEST_F(CpuSchedTest, RemoveLoadStopsCounting) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const LoadHandle h = cpu_.add_load(pid, 0.5);
  cpu_.remove_load(h);
  sim_.run_for(sim::seconds(1));
  EXPECT_DOUBLE_EQ(cpu_.sample_window().total_utilization, 0.0);
}

TEST_F(CpuSchedTest, SetDutyAdjustsLoad) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const LoadHandle h = cpu_.add_load(pid, 0.5);
  cpu_.set_duty(h, 0.2);
  sim_.run_for(sim::seconds(1));
  EXPECT_NEAR(cpu_.sample_window().total_utilization, 0.2, 1e-9);
}

TEST_F(CpuSchedTest, DutyIsClamped) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.add_load(pid, 3.0);
  EXPECT_DOUBLE_EQ(cpu_.instantaneous_utilization(), 1.0);
}

TEST_F(CpuSchedTest, BurstSpreadsOverWindow) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.sample_window();
  cpu_.charge_burst(pid, sim::millis(100));
  sim_.run_for(sim::seconds(1));
  const CpuWindow window = cpu_.sample_window();
  EXPECT_NEAR(window.total_utilization, 0.1, 1e-9);
}

TEST_F(CpuSchedTest, BurstsAreConsumedByOneWindow) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.charge_burst(pid, sim::millis(100));
  sim_.run_for(sim::seconds(1));
  cpu_.sample_window();
  sim_.run_for(sim::seconds(1));
  EXPECT_DOUBLE_EQ(cpu_.sample_window().total_utilization, 0.0);
}

TEST_F(CpuSchedTest, SuspendFreezesEverything) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.add_load(pid, 0.7);
  cpu_.set_suspended(true);
  sim_.run_for(sim::seconds(1));
  EXPECT_DOUBLE_EQ(cpu_.sample_window().total_utilization, 0.0);
  EXPECT_DOUBLE_EQ(cpu_.instantaneous_utilization(), 0.0);
  cpu_.set_suspended(false);
  EXPECT_NEAR(cpu_.instantaneous_utilization(), 0.7, 1e-9);
}

TEST_F(CpuSchedTest, SuspendedBurstsAreDropped) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.set_suspended(true);
  cpu_.charge_burst(pid, sim::millis(500));
  cpu_.set_suspended(false);
  sim_.run_for(sim::seconds(1));
  EXPECT_DOUBLE_EQ(cpu_.sample_window().total_utilization, 0.0);
}

TEST_F(CpuSchedTest, SharesSumToTotal) {
  const Pid a = processes_.spawn(Uid{10000}, "a");
  const Pid b = processes_.spawn(Uid{10001}, "b");
  cpu_.add_load(a, 0.25);
  cpu_.add_load(b, 0.35);
  sim_.run_for(sim::seconds(1));
  const CpuWindow window = cpu_.sample_window();
  double sum = 0.0;
  for (const auto& s : window.shares) sum += s.share;
  EXPECT_NEAR(sum, window.total_utilization, 1e-9);
}

TEST_F(CpuSchedTest, MidWindowDutyChangeIsTimeWeighted) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const LoadHandle h = cpu_.add_load(pid, 0.8);
  sim_.run_for(sim::millis(250));
  cpu_.set_duty(h, 0.2);
  sim_.run_for(sim::millis(750));
  // 0.8 for a quarter of the window + 0.2 for three quarters = 0.35.
  EXPECT_NEAR(cpu_.sample_window().total_utilization, 0.35, 1e-9);
}

TEST_F(CpuSchedTest, SuspendMidWindowIsProrated) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.add_load(pid, 0.6);
  sim_.run_for(sim::millis(500));
  cpu_.set_suspended(true);
  sim_.run_for(sim::millis(500));
  EXPECT_NEAR(cpu_.sample_window().total_utilization, 0.3, 1e-9);
}

TEST_F(CpuSchedTest, DeathMidWindowIsProrated) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.add_load(pid, 0.4);
  sim_.run_for(sim::millis(500));
  processes_.kill(pid);
  sim_.run_for(sim::millis(500));
  const CpuWindow window = cpu_.sample_window();
  EXPECT_NEAR(window.total_utilization, 0.2, 1e-9);
  EXPECT_NEAR(window.share_of(Uid{10000}), 0.2, 1e-9);
}

TEST_F(CpuSchedTest, RemoveLoadMidWindowIsProrated) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const LoadHandle h = cpu_.add_load(pid, 1.0);
  sim_.run_for(sim::millis(100));
  cpu_.remove_load(h);
  sim_.run_for(sim::millis(900));
  EXPECT_NEAR(cpu_.sample_window().total_utilization, 0.1, 1e-9);
}

TEST_F(CpuSchedTest, ZeroLengthWindowIsEmpty) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  cpu_.add_load(pid, 0.5);
  cpu_.sample_window();
  const CpuWindow window = cpu_.sample_window();
  EXPECT_DOUBLE_EQ(window.total_utilization, 0.0);
}

}  // namespace
}  // namespace eandroid::kernelsim
