#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"
#include "kernel/cpu_sched.h"
#include "sim/simulator.h"

namespace eandroid::kernelsim {
namespace {

class MulticoreTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  ProcessTable processes_;
  CpuScheduler quad_{sim_, processes_, 4};
};

TEST_F(MulticoreTest, CoreCountClampsToOne) {
  CpuScheduler bad(sim_, processes_, 0);
  EXPECT_EQ(bad.cores(), 1);
  EXPECT_EQ(quad_.cores(), 4);
}

TEST_F(MulticoreTest, UtilizationNormalizedOverCores) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  quad_.add_load(pid, 1.0);  // one full core of demand
  EXPECT_NEAR(quad_.instantaneous_utilization(), 0.25, 1e-9);
  sim_.run_for(sim::seconds(1));
  EXPECT_NEAR(quad_.sample_window().total_utilization, 0.25, 1e-9);
}

TEST_F(MulticoreTest, ParallelAppsDoNotContendBelowCapacity) {
  const Pid a = processes_.spawn(Uid{10000}, "a");
  const Pid b = processes_.spawn(Uid{10001}, "b");
  quad_.add_load(a, 1.0);
  quad_.add_load(b, 1.0);
  sim_.run_for(sim::seconds(1));
  const CpuWindow window = quad_.sample_window();
  EXPECT_NEAR(window.total_utilization, 0.5, 1e-9);
  // Each app gets its full core — no proportional squeeze.
  EXPECT_NEAR(window.share_of(Uid{10000}), 0.25, 1e-9);
  EXPECT_NEAR(window.share_of(Uid{10001}), 0.25, 1e-9);
}

TEST_F(MulticoreTest, SaturatesAtAllCores) {
  std::vector<Pid> pids;
  for (int i = 0; i < 6; ++i) {
    const Pid pid = processes_.spawn(Uid{10000 + i}, "p");
    quad_.add_load(pid, 1.0);
    pids.push_back(pid);
  }
  sim_.run_for(sim::seconds(1));
  const CpuWindow window = quad_.sample_window();
  EXPECT_NEAR(window.total_utilization, 1.0, 1e-9);  // 6 cores wanted, 4 given
  double sum = 0.0;
  for (const auto& s : window.shares) sum += s.share;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST_F(MulticoreTest, EndToEndQuadCoreDevice) {
  apps::TestbedOptions options;
  options.params.cpu_cores = 4;
  apps::Testbed bed(options);
  apps::DemoAppSpec spec = apps::message_spec();
  spec.foreground_cpu = 1.0;  // one core flat-out
  bed.install<apps::DemoApp>(spec);
  bed.start();
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::seconds(10));
  // A quarter of package power for 10 s: 0.25 * 1000 mW * 10 s.
  EXPECT_NEAR(bed.battery_stats().app_energy_mj(
                  bed.uid_of("com.example.message")),
              2500.0, 50.0);
}

TEST_F(MulticoreTest, SingleCoreDefaultUnchanged) {
  CpuScheduler single(sim_, processes_);
  EXPECT_EQ(single.cores(), 1);
  const Pid pid = processes_.spawn(Uid{10099}, "x");
  single.add_load(pid, 0.6);
  EXPECT_NEAR(single.instantaneous_utilization(), 0.6, 1e-9);
}

}  // namespace
}  // namespace eandroid::kernelsim
