#include "kernel/binder.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace eandroid::kernelsim {
namespace {

class BinderTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  ProcessTable processes_;
  BinderDriver binder_{sim_, processes_};
};

TEST_F(BinderTest, MintedTokensAreUnique) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const BinderToken t1 = binder_.mint_token(pid);
  const BinderToken t2 = binder_.mint_token(pid);
  EXPECT_NE(t1, t2);
  EXPECT_TRUE(t1.valid());
}

TEST_F(BinderTest, DeathRecipientFiresOnProcessDeath) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const BinderToken token = binder_.mint_token(pid);
  bool fired = false;
  EXPECT_TRUE(binder_.link_to_death(token, [&](BinderToken) { fired = true; }));
  EXPECT_FALSE(fired);
  processes_.kill(pid);
  EXPECT_TRUE(fired);
}

TEST_F(BinderTest, LinkToDeadObjectDeliversObituaryImmediately) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const BinderToken token = binder_.mint_token(pid);
  processes_.kill(pid);
  bool fired = false;
  EXPECT_FALSE(
      binder_.link_to_death(token, [&](BinderToken) { fired = true; }));
  EXPECT_TRUE(fired);
}

TEST_F(BinderTest, UnlinkPreventsNotification) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const BinderToken token = binder_.mint_token(pid);
  bool fired = false;
  binder_.link_to_death(token, [&](BinderToken) { fired = true; });
  binder_.unlink_to_death(token);
  processes_.kill(pid);
  EXPECT_FALSE(fired);
}

TEST_F(BinderTest, LinkToUnknownTokenFails) {
  EXPECT_FALSE(binder_.link_to_death(BinderToken{999}, [](BinderToken) {}));
}

TEST_F(BinderTest, OnlyDyingProcessTokensFire) {
  const Pid a = processes_.spawn(Uid{10000}, "a");
  const Pid b = processes_.spawn(Uid{10001}, "b");
  int fired = 0;
  binder_.link_to_death(binder_.mint_token(a), [&](BinderToken) { ++fired; });
  binder_.link_to_death(binder_.mint_token(b), [&](BinderToken) { ++fired; });
  processes_.kill(a);
  EXPECT_EQ(fired, 1);
}

TEST_F(BinderTest, MultipleRecipientsAllFire) {
  const Pid pid = processes_.spawn(Uid{10000}, "a");
  const BinderToken token = binder_.mint_token(pid);
  int fired = 0;
  binder_.link_to_death(token, [&](BinderToken) { ++fired; });
  binder_.link_to_death(token, [&](BinderToken) { ++fired; });
  processes_.kill(pid);
  EXPECT_EQ(fired, 2);
}

TEST_F(BinderTest, TransactionsAreCountedOnBothEnds) {
  const Pid a = processes_.spawn(Uid{10000}, "a");
  const Pid b = processes_.spawn(Uid{10001}, "b");
  binder_.transact(a, b, 1024);
  binder_.transact(a, b, 2048);
  EXPECT_EQ(binder_.stats_for(a).count, 2u);
  EXPECT_EQ(binder_.stats_for(b).count, 2u);
  EXPECT_EQ(binder_.stats_for(a).bytes, 3072u);
  EXPECT_EQ(binder_.total_transactions(), 2u);
}

TEST_F(BinderTest, TransactionCostGrowsWithPayload) {
  const Pid a = processes_.spawn(Uid{10000}, "a");
  const Pid b = processes_.spawn(Uid{10001}, "b");
  const sim::Duration small = binder_.transact(a, b, 128);
  const sim::Duration large = binder_.transact(a, b, 64 * 1024);
  EXPECT_GT(large, small);
  EXPECT_GT(small, sim::Duration(0));
}

}  // namespace
}  // namespace eandroid::kernelsim
