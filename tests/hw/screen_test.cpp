#include "hw/screen.h"

#include <gtest/gtest.h>

namespace eandroid::hw {
namespace {

TEST(ScreenTest, DefaultsOnAtMidBrightness) {
  Screen screen(nexus4_params());
  EXPECT_TRUE(screen.on());
  EXPECT_EQ(screen.brightness(), 102);
}

TEST(ScreenTest, OffMeansZeroPower) {
  Screen screen(nexus4_params());
  screen.set_on(false);
  EXPECT_DOUBLE_EQ(screen.power_mw(), 0.0);
}

TEST(ScreenTest, PowerIsLinearInBrightness) {
  const PowerParams& params = nexus4_params();
  Screen screen(params);
  screen.set_brightness(0);
  EXPECT_DOUBLE_EQ(screen.power_mw(), params.screen_base_mw);
  screen.set_brightness(100);
  EXPECT_DOUBLE_EQ(screen.power_mw(),
                   params.screen_base_mw + 100 * params.screen_per_level_mw);
  screen.set_brightness(200);
  EXPECT_DOUBLE_EQ(screen.power_mw(),
                   params.screen_base_mw + 200 * params.screen_per_level_mw);
}

TEST(ScreenTest, BrightnessClampsToLevelRange) {
  Screen screen(nexus4_params());
  screen.set_brightness(9999);
  EXPECT_EQ(screen.brightness(), 255);
  screen.set_brightness(-5);
  EXPECT_EQ(screen.brightness(), 0);
}

TEST(ScreenTest, FullBrightnessCostsMoreThanDim) {
  Screen screen(nexus4_params());
  screen.set_brightness(255);
  const double full = screen.power_mw();
  screen.set_brightness(10);
  EXPECT_GT(full, 1.5 * screen.power_mw());
}

}  // namespace
}  // namespace eandroid::hw
