#include "hw/cpu_power_model.h"

#include <gtest/gtest.h>

namespace eandroid::hw {
namespace {

TEST(CpuPowerModelTest, LegacyLinearWithoutSteps) {
  CpuPowerModel model(nexus4_params());
  EXPECT_DOUBLE_EQ(model.operating_point(0.0).active_mw, 0.0);
  EXPECT_DOUBLE_EQ(model.operating_point(0.5).active_mw, 500.0);
  EXPECT_DOUBLE_EQ(model.operating_point(1.0).active_mw, 1000.0);
  EXPECT_DOUBLE_EQ(model.operating_point(0.5).freq_mhz, 0.0);
}

TEST(CpuPowerModelTest, UtilizationIsClamped) {
  CpuPowerModel model(nexus4_params());
  EXPECT_DOUBLE_EQ(model.operating_point(2.0).active_mw, 1000.0);
  EXPECT_DOUBLE_EQ(model.operating_point(-1.0).active_mw, 0.0);
}

TEST(CpuPowerModelTest, GovernorPicksSlowestSufficientStep) {
  CpuPowerModel model(nexus4_dvfs_params());
  // 384/1512 = 0.254 capacity; 918/1512 = 0.607.
  EXPECT_DOUBLE_EQ(model.operating_point(0.10).freq_mhz, 384.0);
  EXPECT_DOUBLE_EQ(model.operating_point(0.30).freq_mhz, 918.0);
  EXPECT_DOUBLE_EQ(model.operating_point(0.90).freq_mhz, 1512.0);
}

TEST(CpuPowerModelTest, LowerFrequencyIsCheaperPerUnitWork) {
  CpuPowerModel model(nexus4_dvfs_params());
  // The same 0.2 units of (max-referenced) work cost less at 384 MHz
  // than they would at the top frequency's per-unit rate.
  const double at_low = model.operating_point(0.20).active_mw;
  const double top_rate = 1000.0;  // mW per unit at 1512 MHz
  EXPECT_LT(at_low, top_rate * 0.20);
  EXPECT_GT(at_low, 0.0);
}

TEST(CpuPowerModelTest, FullLoadMatchesTopStep) {
  CpuPowerModel model(nexus4_dvfs_params());
  const auto op = model.operating_point(1.0);
  EXPECT_DOUBLE_EQ(op.freq_mhz, 1512.0);
  EXPECT_DOUBLE_EQ(op.active_mw, 1000.0);
}

TEST(CpuPowerModelTest, PowerIsMonotoneInUtilization) {
  CpuPowerModel model(nexus4_dvfs_params());
  double previous = -1.0;
  for (int i = 0; i <= 100; ++i) {
    const double p = model.operating_point(i / 100.0).active_mw;
    EXPECT_GE(p, previous - 1e-9) << "at u=" << i / 100.0;
    previous = p;
  }
}

TEST(CpuPowerModelTest, ZeroUtilizationIdlesAtSlowestStep) {
  CpuPowerModel model(nexus4_dvfs_params());
  const auto op = model.operating_point(0.0);
  EXPECT_DOUBLE_EQ(op.freq_mhz, 384.0);
  EXPECT_DOUBLE_EQ(op.active_mw, 0.0);
}

TEST(CpuPowerModelTest, StepBoundariesAreContinuousEnough) {
  CpuPowerModel model(nexus4_dvfs_params());
  // Just below a step boundary the slower step runs ~flat-out; just above
  // it the faster step runs partially — power may step, but never by more
  // than the gap between adjacent steps' full-power values.
  const double below = model.operating_point(0.2539).active_mw;
  const double above = model.operating_point(0.2541).active_mw;
  EXPECT_LT(std::abs(above - below), 450.0 - 140.0 + 1.0);
}

}  // namespace
}  // namespace eandroid::hw
