#include "hw/session_component.h"

#include <gtest/gtest.h>

#include "sim/simulator.h"

namespace eandroid::hw {
namespace {

constexpr kernelsim::Uid kAppA{10000};
constexpr kernelsim::Uid kAppB{10001};

class SessionComponentTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
  SessionComponent camera_{sim_, "camera", 1200.0, 150.0, sim::millis(500)};
};

TEST_F(SessionComponentTest, InactiveDrawsNothing) {
  EXPECT_FALSE(camera_.active());
  EXPECT_DOUBLE_EQ(camera_.breakdown().total_mw, 0.0);
}

TEST_F(SessionComponentTest, ActiveSessionAttributedToOwner) {
  camera_.begin_session(kAppA);
  const PowerBreakdown breakdown = camera_.breakdown();
  EXPECT_DOUBLE_EQ(breakdown.total_mw, 1200.0);
  EXPECT_DOUBLE_EQ(breakdown.of(kAppA), 1200.0);
}

TEST_F(SessionComponentTest, ConcurrentSessionsShareEqually) {
  camera_.begin_session(kAppA);
  camera_.begin_session(kAppB);
  const PowerBreakdown breakdown = camera_.breakdown();
  EXPECT_DOUBLE_EQ(breakdown.total_mw, 1200.0);
  EXPECT_DOUBLE_EQ(breakdown.of(kAppA), 600.0);
  EXPECT_DOUBLE_EQ(breakdown.of(kAppB), 600.0);
}

TEST_F(SessionComponentTest, SameUidTwoSessionsGetsFullPower) {
  camera_.begin_session(kAppA);
  camera_.begin_session(kAppA);
  EXPECT_DOUBLE_EQ(camera_.breakdown().of(kAppA), 1200.0);
}

TEST_F(SessionComponentTest, TailPowerAfterLastSessionEnds) {
  const SessionId id = camera_.begin_session(kAppA);
  camera_.end_session(id);
  const PowerBreakdown tail = camera_.breakdown();
  EXPECT_DOUBLE_EQ(tail.total_mw, 150.0);
  EXPECT_DOUBLE_EQ(tail.of(kAppA), 150.0);
}

TEST_F(SessionComponentTest, TailExpires) {
  const SessionId id = camera_.begin_session(kAppA);
  camera_.end_session(id);
  sim_.run_for(sim::millis(501));
  EXPECT_DOUBLE_EQ(camera_.breakdown().total_mw, 0.0);
}

TEST_F(SessionComponentTest, NoTailWhileAnotherSessionRuns) {
  const SessionId a = camera_.begin_session(kAppA);
  camera_.begin_session(kAppB);
  camera_.end_session(a);
  const PowerBreakdown breakdown = camera_.breakdown();
  EXPECT_DOUBLE_EQ(breakdown.total_mw, 1200.0);
  EXPECT_DOUBLE_EQ(breakdown.of(kAppB), 1200.0);
}

TEST_F(SessionComponentTest, EndUnknownSessionIsNoop) {
  camera_.end_session(SessionId{999});
  EXPECT_DOUBLE_EQ(camera_.breakdown().total_mw, 0.0);
}

TEST_F(SessionComponentTest, EndSessionsOfUidCleansUp) {
  camera_.begin_session(kAppA);
  camera_.begin_session(kAppA);
  camera_.begin_session(kAppB);
  camera_.end_sessions_of(kAppA);
  EXPECT_EQ(camera_.session_count(), 1u);
  EXPECT_DOUBLE_EQ(camera_.breakdown().of(kAppB), 1200.0);
}

TEST_F(SessionComponentTest, ZeroTailComponentGoesStraightToIdle) {
  SessionComponent audio(sim_, "audio", 250.0, 0.0, sim::Duration(0));
  const SessionId id = audio.begin_session(kAppA);
  audio.end_session(id);
  EXPECT_DOUBLE_EQ(audio.breakdown().total_mw, 0.0);
}

}  // namespace
}  // namespace eandroid::hw
