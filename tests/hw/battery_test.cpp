#include "hw/battery.h"

#include <gtest/gtest.h>

namespace eandroid::hw {
namespace {

TEST(BatteryTest, StartsFull) {
  Battery battery(1000.0);  // 1000 mWh
  EXPECT_EQ(battery.percent(), 100);
  EXPECT_DOUBLE_EQ(battery.capacity_mj(), 3'600'000.0);
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), battery.capacity_mj());
  EXPECT_FALSE(battery.empty());
}

TEST(BatteryTest, DrainReducesRemaining) {
  Battery battery(1.0);  // 3600 mJ
  battery.drain(360.0, sim::TimePoint());
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 3240.0);
  EXPECT_EQ(battery.percent(), 90);
  EXPECT_DOUBLE_EQ(battery.drained_mj(), 360.0);
}

TEST(BatteryTest, ClampsAtEmpty) {
  Battery battery(1.0);
  battery.drain(10'000.0, sim::TimePoint());
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 0.0);
  EXPECT_TRUE(battery.empty());
  EXPECT_EQ(battery.percent(), 0);
}

TEST(BatteryTest, NegativeOrZeroDrainIgnored) {
  Battery battery(1.0);
  battery.drain(0.0, sim::TimePoint());
  battery.drain(-5.0, sim::TimePoint());
  EXPECT_EQ(battery.percent(), 100);
}

TEST(BatteryTest, HistoryRecordsEveryPercentDrop) {
  Battery battery(1.0);  // 3600 mJ; 1% = 36 mJ
  battery.drain(72.0, sim::TimePoint(10));
  ASSERT_EQ(battery.history().size(), 3u);  // initial 100 + 99 + 98
  EXPECT_EQ(battery.history()[0].percent, 100);
  EXPECT_EQ(battery.history()[1].percent, 99);
  EXPECT_EQ(battery.history()[2].percent, 98);
  EXPECT_EQ(battery.history()[2].when, sim::TimePoint(10));
}

TEST(BatteryTest, PercentDropCallbackFires) {
  Battery battery(1.0);  // 3600 mJ; 1% = 36 mJ
  std::vector<int> drops;
  battery.set_on_percent_drop([&](int p) { drops.push_back(p); });
  battery.drain(20.0, sim::TimePoint());  // -> 99.4%
  battery.drain(60.0, sim::TimePoint());  // -> 97.7%: crosses 98 and 97
  EXPECT_EQ(drops, (std::vector<int>{99, 98, 97}));
}

TEST(BatteryTest, DrainKeepsCountingConsumptionWhenEmpty) {
  Battery battery(1.0);  // 3600 mJ
  battery.drain(10'000.0, sim::TimePoint());
  battery.drain(500.0, sim::TimePoint());
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 0.0);
  EXPECT_DOUBLE_EQ(battery.consumed_total_mj(), 10'500.0);
}

TEST(BatteryTest, DepleteToSkipsConsumptionLedger) {
  Battery battery(1.0);  // 3600 mJ
  battery.drain(360.0, sim::TimePoint());
  std::vector<int> drops;
  battery.set_on_percent_drop([&](int p) { drops.push_back(p); });

  // The exhaust fault: the cell collapses, nothing was consumed.
  battery.deplete_to(0.0, sim::TimePoint(5));
  EXPECT_TRUE(battery.empty());
  EXPECT_DOUBLE_EQ(battery.consumed_total_mj(), 360.0);
  ASSERT_FALSE(drops.empty());  // percent drops still announced
  EXPECT_EQ(drops.back(), 0);

  // Depleting "up" is a no-op; deplete never adds charge.
  battery.deplete_to(100.0, sim::TimePoint(6));
  EXPECT_DOUBLE_EQ(battery.remaining_mj(), 0.0);
}

TEST(BatteryTest, ManySmallDrainsMatchOneBigDrain) {
  Battery a(1.0), b(1.0);
  for (int i = 0; i < 100; ++i) a.drain(3.6, sim::TimePoint(i));
  b.drain(360.0, sim::TimePoint());
  EXPECT_NEAR(a.remaining_mj(), b.remaining_mj(), 1e-6);
  EXPECT_EQ(a.percent(), b.percent());
}

}  // namespace
}  // namespace eandroid::hw
