#include <gtest/gtest.h>

#include "apps/demo_app.h"
#include "apps/testbed.h"
#include "framework/broadcast_manager.h"
#include "hw/battery.h"

namespace eandroid::hw {
namespace {

TEST(BatteryChargingTest, ChargeRefillsAndClamps) {
  Battery battery(1.0);  // 3600 mJ
  battery.drain(1800.0, sim::TimePoint());
  EXPECT_EQ(battery.percent(), 50);
  battery.charge(900.0, sim::TimePoint(1));
  EXPECT_EQ(battery.percent(), 75);
  battery.charge(99999.0, sim::TimePoint(2));
  EXPECT_TRUE(battery.full());
  EXPECT_EQ(battery.percent(), 100);
}

TEST(BatteryChargingTest, HistoryRecordsRises) {
  Battery battery(1.0);
  battery.drain(360.0, sim::TimePoint());   // -> 90%
  const std::size_t after_drain = battery.history().size();
  battery.charge(72.0, sim::TimePoint(5));  // -> 92%
  ASSERT_EQ(battery.history().size(), after_drain + 2);
  EXPECT_EQ(battery.history().back().percent, 92);
}

TEST(BatteryChargingTest, ChargingFlagAndRate) {
  Battery battery(1.0);
  EXPECT_FALSE(battery.charging());
  battery.set_charging(true, 4200.0);
  EXPECT_TRUE(battery.charging());
  EXPECT_DOUBLE_EQ(battery.charge_rate_mw(), 4200.0);
  battery.set_charging(false);
  EXPECT_DOUBLE_EQ(battery.charge_rate_mw(), 0.0);
}

TEST(BatteryChargingTest, ChargeWhenFullIsNoop) {
  Battery battery(1.0);
  battery.charge(100.0, sim::TimePoint());
  EXPECT_EQ(battery.percent(), 100);
  EXPECT_EQ(battery.history().size(), 1u);
}

TEST(ChargerIntegrationTest, PluggedDeviceGainsCharge) {
  apps::Testbed bed;
  bed.start();
  bed.run_for(sim::minutes(5));  // drain a little
  const double before = bed.server().battery().remaining_mj();
  bed.server().plug_charger(5000.0);
  bed.run_for(sim::minutes(5));
  EXPECT_GT(bed.server().battery().remaining_mj(), before);
  bed.server().unplug_charger();
  const double at_unplug = bed.server().battery().remaining_mj();
  bed.run_for(sim::minutes(1));
  EXPECT_LT(bed.server().battery().remaining_mj(), at_unplug);
}

TEST(ChargerIntegrationTest, PowerConnectedBroadcastDelivered) {
  apps::Testbed bed;
  apps::DemoAppSpec spec = apps::message_spec();
  spec.package = "com.charge.listener";
  bed.install<apps::DemoApp>(spec);
  bed.start();
  bed.context_of("com.charge.listener")
      .register_receiver(framework::kActionPowerConnected);
  const std::uint64_t before = bed.server().broadcasts().deliveries();
  bed.server().plug_charger();
  EXPECT_EQ(bed.server().broadcasts().deliveries(), before + 1);
}

TEST(ChargerIntegrationTest, ProfilersKeepConservingWhileCharging) {
  // Conservation is stated over consumption, not net battery flow: the
  // profilers' totals equal what the device consumed even while the
  // charger back-fills.
  apps::Testbed bed;
  apps::DemoAppSpec spec = apps::message_spec();
  spec.foreground_cpu = 0.3;
  bed.install<apps::DemoApp>(spec);
  bed.start();
  bed.server().plug_charger(5000.0);
  bed.server().user_launch("com.example.message");
  bed.run_for(sim::minutes(2));
  EXPECT_NEAR(bed.battery_stats().total_mj(),
              bed.eandroid()->engine().true_total_mj(), 1e-3);
  // The battery itself went UP despite the consumption.
  EXPECT_TRUE(bed.server().battery().full());
}

}  // namespace
}  // namespace eandroid::hw
